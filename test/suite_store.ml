(* Tests for dsdg_store: the CRC-checked codec, snapshot save/load,
   WAL append/read/torn-tail handling, crash recovery (including
   idempotence and the kill-point differential sweep), and the located
   trace parse errors shared by the WAL reader and --replay. *)

open Dsdg_store
module Di = Dsdg_core.Dynamic_index
module Trace = Dsdg_check.Trace
module Model = Dsdg_check.Model

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let with_dir prefix f =
  let d = tmp_dir prefix in
  Fun.protect ~finally:(fun () -> Kill_check.reset_dir d) (fun () -> f d)

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let all_variants = [ Di.Amortized; Di.Amortized_loglog; Di.Worst_case ]
let all_backends = [ Di.Fm; Di.Plain_sa; Di.Csa ]

let variant_name = function
  | Di.Amortized -> "t1"
  | Di.Amortized_loglog -> "t3"
  | Di.Worst_case -> "t2"

let backend_name = function Di.Fm -> "fm" | Di.Plain_sa -> "sa" | Di.Csa -> "csa"

(* Drive [ops] into an index + model together; returns the number of
   inserts (= next id) for dead-id checking. *)
let drive idx m ops =
  let inserts = ref 0 in
  List.iter
    (fun (op : Trace.op) ->
      match op with
      | Trace.Insert s ->
        let a = Di.insert idx s in
        let b = Model.insert m s in
        incr inserts;
        Alcotest.(check int) "insert id" b a
      | Trace.Delete id ->
        let a = Di.delete idx id in
        let b = Model.delete m id in
        Alcotest.(check bool) "delete result" b a
      | _ -> ())
    ops;
  !inserts

let assert_matches_model ~label idx m ~inserts =
  Alcotest.(check int) (label ^ ": doc_count") (Model.doc_count m) (Di.doc_count idx);
  Alcotest.(check int) (label ^ ": total_symbols") (Model.total_symbols m) (Di.total_symbols idx);
  let live = Model.live m in
  List.iter
    (fun (id, text) ->
      Alcotest.(check bool) (Printf.sprintf "%s: mem %d" label id) true (Di.mem idx id);
      Alcotest.(check (option string))
        (Printf.sprintf "%s: extract %d" label id)
        (Some text)
        (Di.extract idx ~doc:id ~off:0 ~len:(String.length text)))
    live;
  for id = 0 to inserts - 1 do
    if not (List.mem_assoc id live) then
      Alcotest.(check bool) (Printf.sprintf "%s: dead %d" label id) false (Di.mem idx id)
  done;
  List.iter
    (fun p ->
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "%s: search %S" label p)
        (Model.search m p) (Di.search idx p))
    [ "ab"; "ba"; "a" ]

let churn_ops =
  [
    Trace.Insert "abracadabra";
    Trace.Insert "banana band";
    Trace.Insert "";
    Trace.Insert "cabbage";
    Trace.Delete 1;
    Trace.Insert "abba babble";
    Trace.Delete 0;
    Trace.Insert "dabble";
    Trace.Insert "barbarossa";
    Trace.Delete 3;
    Trace.Delete 3;
    Trace.Insert "a";
    Trace.Insert "baobab";
    Trace.Delete 5;
    Trace.Insert "scarab beetle";
  ]

(* --- codec primitives --- *)

let test_codec_primitives () =
  let w = Codec.W.create () in
  Codec.W.u8 w 0;
  Codec.W.u8 w 255;
  Codec.W.int w 0;
  Codec.W.int w max_int;
  Codec.W.int w min_int;
  Codec.W.int w (-42);
  Codec.W.string w "";
  Codec.W.string w "hello \x00 binary \xff bytes";
  Codec.W.bool_array w [||];
  Codec.W.bool_array w [| true |];
  Codec.W.bool_array w (Array.init 17 (fun i -> i mod 3 = 0));
  let r = Codec.R.of_string ~file:"mem" ~section:"prim" (Codec.W.contents w) in
  Alcotest.(check int) "u8 0" 0 (Codec.R.u8 r);
  Alcotest.(check int) "u8 255" 255 (Codec.R.u8 r);
  Alcotest.(check int) "int 0" 0 (Codec.R.int r);
  Alcotest.(check int) "int max" max_int (Codec.R.int r);
  Alcotest.(check int) "int min" min_int (Codec.R.int r);
  Alcotest.(check int) "int -42" (-42) (Codec.R.int r);
  Alcotest.(check string) "string empty" "" (Codec.R.string r);
  Alcotest.(check string) "string binary" "hello \x00 binary \xff bytes" (Codec.R.string r);
  Alcotest.(check (array bool)) "bools empty" [||] (Codec.R.bool_array r);
  Alcotest.(check (array bool)) "bools one" [| true |] (Codec.R.bool_array r);
  Alcotest.(check (array bool))
    "bools 17"
    (Array.init 17 (fun i -> i mod 3 = 0))
    (Codec.R.bool_array r);
  Alcotest.(check bool) "at_end" true (Codec.R.at_end r);
  (* overrun is a located Corrupt, not a crash *)
  (match Codec.R.int r with
  | _ -> Alcotest.fail "overrun not detected"
  | exception Codec.Corrupt _ -> ())

let test_crc32_vector () =
  (* the classic check value for the IEEE polynomial *)
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926 (Codec.crc32 "123456789");
  Alcotest.(check int) "crc32 empty" 0 (Codec.crc32 "")

(* --- container integrity --- *)

let mk_small_store dir =
  let idx = Di.create ~variant:Di.Worst_case ~backend:Di.Fm ~sample:4 ~tau:4 () in
  let m = Model.create () in
  let inserts = drive idx m churn_ops in
  let path = Snapshot.save ~dir ~wal_serial:17 (Di.dump idx) in
  (path, m, inserts)

let test_snapshot_roundtrip () =
  with_dir "dsdg-store-rt" (fun dir ->
      let path, m, inserts = mk_small_store dir in
      let dump, wal_serial = Snapshot.load path in
      Alcotest.(check int) "wal serial" 17 wal_serial;
      let idx = Di.restore dump in
      assert_matches_model ~label:"loaded" idx m ~inserts;
      Alcotest.(check int) "epoch survives" dump.Di.dm_epoch (Di.view_epoch (Di.view idx)))

(* Every single-byte corruption must surface as Codec.Corrupt -- never
   as a different decoded state, never as a random exception.  (The
   format-version byte is the one legal flip: turning version 1 into 0
   yields an older-versioned but otherwise intact file, which must then
   decode to the identical dump.) *)
let test_snapshot_corruption_rejected () =
  with_dir "dsdg-store-corrupt" (fun dir ->
      let path, _, _ = mk_small_store dir in
      let good = read_file path in
      let reference = Snapshot.load path in
      let n = String.length good in
      let step = max 1 (n / 251) in
      let checked = ref 0 in
      let i = ref 0 in
      while !i < n do
        let b = Bytes.of_string good in
        Bytes.set b !i (Char.chr (Char.code (Bytes.get b !i) lxor 0x41));
        write_file path (Bytes.to_string b);
        (match Snapshot.load path with
        | d -> if d <> reference then Alcotest.failf "flip at byte %d silently changed the dump" !i
        | exception Codec.Corrupt _ -> ()
        | exception e ->
          Alcotest.failf "flip at byte %d raised %s, not Corrupt" !i (Printexc.to_string e));
        incr checked;
        i := !i + step
      done;
      Alcotest.(check bool) "flipped a few bytes" true (!checked > 100))

let test_snapshot_truncation_rejected () =
  with_dir "dsdg-store-trunc" (fun dir ->
      let path, _, _ = mk_small_store dir in
      let good = read_file path in
      let n = String.length good in
      List.iter
        (fun len ->
          write_file path (String.sub good 0 len);
          match Snapshot.load path with
          | _ -> Alcotest.failf "truncation to %d bytes not detected" len
          | exception Codec.Corrupt _ -> ())
        [ 0; 1; 3; 4; 5; n / 4; n / 2; n - 1 ])

let test_relation_roundtrip () =
  with_dir "dsdg-store-rel" (fun dir ->
      let rel = Dsdg_binrel.Dyn_binrel.create ~tau:4 () in
      let ops = [ (1, 2); (1, 3); (2, 2); (5, 9); (1, 2); (7, 1) ] in
      List.iter (fun (o, a) -> ignore (Dsdg_binrel.Dyn_binrel.add rel o a)) ops;
      ignore (Dsdg_binrel.Dyn_binrel.remove rel 2 2);
      let path = Filename.concat dir "rel.dsdg" in
      Snapshot.ensure_dir dir;
      Codec.write_relation path (Dsdg_binrel.Dyn_binrel.pairs_list rel);
      let pairs = Codec.read_relation path in
      Alcotest.(check (list (pair int int))) "pairs" [ (1, 2); (1, 3); (5, 9); (7, 1) ] pairs;
      (* digraph edge set goes through the same codec *)
      let g = Dsdg_binrel.Digraph.create () in
      List.iter (fun (u, v) -> ignore (Dsdg_binrel.Digraph.add_edge g u v)) pairs;
      Alcotest.(check (list (pair int int))) "edges" pairs (Dsdg_binrel.Digraph.edges g))

(* --- dump/restore across the matrix --- *)

let test_dump_restore_matrix () =
  List.iter
    (fun variant ->
      List.iter
        (fun backend ->
          let label = variant_name variant ^ "/" ^ backend_name backend in
          let idx = Di.create ~variant ~backend ~sample:4 ~tau:4 () in
          let m = Model.create () in
          let inserts = drive idx m churn_ops in
          let dump = Di.dump idx in
          let restored = Di.restore dump in
          assert_matches_model ~label restored m ~inserts;
          Alcotest.(check int)
            (label ^ ": epoch survives")
            dump.Di.dm_epoch
            (Di.view_epoch (Di.view restored)))
        all_backends)
    all_variants

(* --- WAL --- *)

let test_wal_roundtrip () =
  with_dir "dsdg-wal-rt" (fun dir ->
      Snapshot.ensure_dir dir;
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create ~sync:(Wal.Every 2) path ~serial0:5 in
      Alcotest.(check int) "serial 5" 5 (Wal.append w (Trace.Insert "alpha"));
      Alcotest.(check int) "serial 6" 6 (Wal.append w (Trace.Delete 0));
      Alcotest.(check int) "serial 7" 7 (Wal.append w (Trace.Insert "beta \"quoted\"\nline"));
      Wal.close w;
      let c = Wal.read path in
      Alcotest.(check int) "serial0" 5 c.Wal.wc_serial0;
      Alcotest.(check bool) "not truncated" false c.Wal.wc_truncated;
      Alcotest.(check (list (pair int string)))
        "records"
        [ (5, "+ \"alpha\""); (6, "- 0"); (7, Trace.op_to_string (Trace.Insert "beta \"quoted\"\nline")) ]
        (List.map (fun (s, op) -> (s, Trace.op_to_string op)) c.Wal.wc_ops);
      (* reopen for append continues the serials *)
      let w2 = Wal.open_append path ~next_serial:8 in
      Alcotest.(check int) "serial 8" 8 (Wal.append w2 (Trace.Insert "gamma"));
      Wal.close w2;
      Alcotest.(check int) "4 records" 4 (List.length (Wal.read path).Wal.wc_ops))

let test_wal_torn_tail () =
  with_dir "dsdg-wal-torn" (fun dir ->
      Snapshot.ensure_dir dir;
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create path ~serial0:0 in
      ignore (Wal.append w (Trace.Insert "kept"));
      ignore (Wal.append w (Trace.Delete 0));
      Wal.kill w ~torn:true;
      let c = Wal.read path in
      Alcotest.(check bool) "truncated" true c.Wal.wc_truncated;
      Alcotest.(check int) "2 whole records" 2 (List.length c.Wal.wc_ops);
      Wal.truncate_torn path c;
      let c2 = Wal.read path in
      Alcotest.(check bool) "clean after truncation" false c2.Wal.wc_truncated;
      Alcotest.(check int) "still 2 records" 2 (List.length c2.Wal.wc_ops);
      (* a parseable-prefix torn record must also be dropped: "- 123"
         torn to "- 12" parses, but replaying it would delete the wrong
         id *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "- 12";
      close_out oc;
      let c3 = Wal.read path in
      Alcotest.(check bool) "parseable prefix dropped" true c3.Wal.wc_truncated;
      Alcotest.(check int) "still 2" 2 (List.length c3.Wal.wc_ops))

let test_wal_interior_corruption_located () =
  with_dir "dsdg-wal-bad" (fun dir ->
      Snapshot.ensure_dir dir;
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create path ~serial0:0 in
      ignore (Wal.append w (Trace.Insert "ok"));
      Wal.close w;
      (* a malformed line *with* a newline was fully written: that is
         real corruption and must be located, not dropped *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "+ unquoted garbage\n";
      output_string oc "- 3\n";
      close_out oc;
      match Wal.read path with
      | _ -> Alcotest.fail "interior corruption not detected"
      | exception Trace.Parse_error e ->
        Alcotest.(check int) "line number" 3 e.Trace.pe_line;
        Alcotest.(check bool)
          "reason names the field" true
          (String.length e.Trace.pe_reason > 0))

let test_wal_missing_header () =
  with_dir "dsdg-wal-nohdr" (fun dir ->
      Snapshot.ensure_dir dir;
      let path = Filename.concat dir "wal.log" in
      write_file path "+ \"no header\"\n";
      match Wal.read path with
      | _ -> Alcotest.fail "missing header not detected"
      | exception Trace.Parse_error _ -> ())

(* --- located trace errors in the --replay consumer --- *)

let test_trace_load_located_error () =
  let path = Filename.temp_file "dsdg-trace-bad" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "% comment\n+ \"fine\"\n\n= 1 2\n";
      match Trace.load path with
      | _ -> Alcotest.fail "bad extract record not detected"
      | exception Trace.Parse_error e ->
        Alcotest.(check int) "line number" 4 e.Trace.pe_line;
        Alcotest.(check string) "offending text" "= 1 2" e.Trace.pe_text;
        let msg = Trace.parse_error_message ~file:"f.trace" e in
        Alcotest.(check bool) "message locates" true
          (String.length msg > 0
          && String.sub msg 0 2 = "f."
          && e.Trace.pe_reason <> ""))

(* --- durable store + recovery --- *)

let durable_cfg every =
  { Durable.sync = Wal.Always; checkpoint_every = every; checkpoint_jobs = 0; keep_snapshots = 2; wal_archives = 4 }

let test_durable_reopen () =
  with_dir "dsdg-durable" (fun dir ->
      let d, info0 = Durable.open_ ~config:(durable_cfg 4) ~sample:4 ~tau:4 ~dir () in
      Alcotest.(check int) "fresh: nothing replayed" 0 info0.Recovery.ri_replayed;
      let m = Model.create () in
      let inserts = ref 0 in
      List.iter
        (fun (op : Trace.op) ->
          match op with
          | Trace.Insert s ->
            ignore (Model.insert m s);
            incr inserts;
            ignore (Durable.insert d s)
          | Trace.Delete id ->
            ignore (Model.delete m id);
            ignore (Durable.delete d id)
          | _ -> ())
        churn_ops;
      let epoch = Di.view_epoch (Di.view (Durable.index d)) in
      Durable.close d;
      let d2, info = Durable.open_ ~config:(durable_cfg 4) ~dir () in
      Alcotest.(check bool) "recovered from a snapshot" true (info.Recovery.ri_snapshot <> None);
      assert_matches_model ~label:"reopened" (Durable.index d2) m ~inserts:!inserts;
      Alcotest.(check int) "epoch continues" epoch (Di.view_epoch (Di.view (Durable.index d2)));
      (* a checkpoint compacts the WAL: the next reopen replays nothing *)
      Durable.checkpoint d2;
      Durable.close d2;
      let d3, info3 = Durable.open_ ~dir () in
      Alcotest.(check int) "no replay after checkpoint" 0 info3.Recovery.ri_replayed;
      assert_matches_model ~label:"re-reopened" (Durable.index d3) m ~inserts:!inserts;
      Durable.close d3)

let test_recovery_idempotent () =
  with_dir "dsdg-recover-idem" (fun dir ->
      let d, _ = Durable.open_ ~config:(durable_cfg 5) ~sample:4 ~tau:4 ~dir () in
      let m = Model.create () in
      let inserts = ref 0 in
      List.iter
        (fun (op : Trace.op) ->
          match op with
          | Trace.Insert s ->
            ignore (Model.insert m s);
            incr inserts;
            ignore (Durable.insert d s)
          | Trace.Delete id ->
            ignore (Model.delete m id);
            ignore (Durable.delete d id)
          | _ -> ())
        churn_ops;
      Durable.kill d ~torn:true;
      (* recovering twice must land in the same state as recovering once *)
      let idx1, info1 = Recovery.open_or_recover ~dir () in
      let state idx =
        ( Di.doc_count idx,
          Di.total_symbols idx,
          Di.view_epoch (Di.view idx),
          List.filter_map
            (fun id -> Di.extract idx ~doc:id ~off:0 ~len:1000 |> Option.map (fun s -> (id, s)))
            (List.init !inserts (fun i -> i)) )
      in
      let s1 = state idx1 in
      Alcotest.(check bool) "first recovery truncated the torn tail" true
        info1.Recovery.ri_truncated;
      Di.close idx1;
      let idx2, info2 = Recovery.open_or_recover ~dir () in
      Alcotest.(check bool) "second recovery sees a clean tail" false info2.Recovery.ri_truncated;
      Alcotest.(check bool) "identical state" true (state idx2 = s1);
      assert_matches_model ~label:"recovered" idx2 m ~inserts:!inserts;
      Di.close idx2)

let test_background_checkpoint () =
  with_dir "dsdg-ckpt-bg" (fun dir ->
      let config =
        { Durable.sync = Wal.Every 4; checkpoint_every = 6; checkpoint_jobs = 1; keep_snapshots = 2; wal_archives = 4 }
      in
      let d, _ = Durable.open_ ~config ~sample:4 ~tau:4 ~dir () in
      let m = Model.create () in
      let inserts = ref 0 in
      for round = 0 to 39 do
        let text = Printf.sprintf "document %d abab%s" round (String.make (round mod 7) 'c') in
        ignore (Model.insert m text);
        incr inserts;
        ignore (Durable.insert d text);
        if round mod 5 = 4 then begin
          let id = round - 3 in
          ignore (Model.delete m id);
          ignore (Durable.delete d id)
        end
      done;
      Durable.close d;
      Alcotest.(check bool) "snapshots were installed" true (Snapshot.list ~dir <> []);
      let d2, _ = Durable.open_ ~dir () in
      assert_matches_model ~label:"bg-checkpointed" (Durable.index d2) m ~inserts:!inserts;
      Durable.close d2)

let test_kill_sweep_matrix () =
  List.iter
    (fun variant ->
      List.iter
        (fun backend ->
          let label = variant_name variant ^ "/" ^ backend_name backend in
          let dir = tmp_dir ("dsdg-kill-" ^ variant_name variant ^ backend_name backend) in
          let ops = Dsdg_check.Opgen.generate ~seed:7 ~ops:24 () in
          let o = Kill_check.sweep ~variant ~backend ~sample:4 ~tau:4 ~stride:5 ~dir ~ops () in
          if o.Kill_check.kc_failures <> [] then
            Alcotest.failf "%s: %s" label (Kill_check.outcome_to_string o))
        all_backends)
    all_variants

(* --- group commit and the [Every n] pending-append accounting --- *)

let fsyncs () =
  match List.assoc_opt "wal_fsyncs" (Dsdg_obs.Obs.counters (Dsdg_obs.Obs.scope "store")) with
  | Some n -> n
  | None -> 0

let test_wal_every_n_accounting () =
  with_dir "dsdg-wal-everyn" (fun dir ->
      Snapshot.ensure_dir dir;
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create ~sync:(Wal.Every 3) path ~serial0:0 in
      ignore (Wal.append w (Trace.Insert "a"));
      ignore (Wal.append w (Trace.Insert "b"));
      Alcotest.(check int) "2 pending" 2 (Wal.unsynced w);
      ignore (Wal.append w (Trace.Insert "c"));
      Alcotest.(check int) "threshold fsyncs, resets" 0 (Wal.unsynced w);
      (* a batch counts every record it carries *)
      ignore (Wal.append_batch w [ Trace.Insert "d"; Trace.Insert "e" ]);
      Alcotest.(check int) "batch of 2 pending" 2 (Wal.unsynced w);
      ignore (Wal.append_batch w [ Trace.Insert "f"; Trace.Insert "g" ]);
      Alcotest.(check int) "batch crosses threshold" 0 (Wal.unsynced w);
      (* explicit sync clears the counter *)
      ignore (Wal.append w (Trace.Insert "h"));
      Wal.sync w;
      Alcotest.(check int) "sync resets" 0 (Wal.unsynced w);
      Wal.close w;
      (* compaction must not carry pending-append state into the new log *)
      let w2 = Wal.rewrite ~sync:(Wal.Every 3) path ~serial0:8 [ Trace.Insert "tail" ] in
      Alcotest.(check int) "rewrite starts clean" 0 (Wal.unsynced w2);
      Wal.close w2;
      (* reopen-for-append likewise *)
      let w3 = Wal.open_append ~sync:(Wal.Every 3) path ~next_serial:9 in
      Alcotest.(check int) "open_append starts clean" 0 (Wal.unsynced w3);
      ignore (Wal.append w3 (Trace.Insert "i"));
      Alcotest.(check int) "counts from zero after reopen" 1 (Wal.unsynced w3);
      Wal.close w3)

let test_wal_group_commit_single_fsync () =
  with_dir "dsdg-wal-group" (fun dir ->
      Snapshot.ensure_dir dir;
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create ~sync:Wal.Always path ~serial0:0 in
      let ops = List.init 16 (fun i -> Trace.Insert (Printf.sprintf "doc %d" i)) in
      let before = fsyncs () in
      let serial = Wal.append_batch w ops in
      Alcotest.(check int) "batch serial" 0 serial;
      Alcotest.(check int) "one fsync for 16 records" 1 (fsyncs () - before);
      Alcotest.(check int) "serials advanced" 16 (Wal.next_serial w);
      (* the empty batch is free: no record, no fsync *)
      let before = fsyncs () in
      Alcotest.(check int) "empty batch serial" 16 (Wal.append_batch w []);
      Alcotest.(check int) "empty batch no fsync" 0 (fsyncs () - before);
      Wal.close w;
      let c = Wal.read path in
      Alcotest.(check int) "all records durable" 16 (List.length c.Wal.wc_ops))

let test_durable_apply_batch () =
  with_dir "dsdg-durable-batch" (fun dir ->
      let d, _ = Durable.open_ ~dir () in
      let rs =
        Durable.apply_batch d
          [ Trace.Insert "alpha"; Trace.Insert "beta"; Trace.Delete 0; Trace.Delete 0 ]
      in
      Alcotest.(check bool) "results in op order" true
        (rs
        = [
            Durable.Br_inserted 0; Durable.Br_inserted 1; Durable.Br_deleted true;
            Durable.Br_deleted false;
          ]);
      (* queries are not mutations: the whole batch is rejected before
         any WAL append *)
      let serial = Durable.wal_serial d in
      (match Durable.apply_batch d [ Trace.Insert "c"; Trace.Search "x" ] with
      | _ -> Alcotest.fail "query accepted in a write batch"
      | exception Invalid_argument _ -> ());
      Alcotest.(check int) "rejected batch logged nothing" serial (Durable.wal_serial d);
      Durable.close d;
      (* the batch is in the WAL: reopen replays it *)
      let d2, info = Durable.open_ ~dir () in
      Alcotest.(check int) "replayed" 4 info.Recovery.ri_replayed;
      Alcotest.(check int) "one live doc" 1 (Di.doc_count (Durable.index d2));
      Alcotest.(check bool) "beta live" true (Di.mem (Durable.index d2) 1);
      Durable.close d2)

let open_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_checkpoint_no_fd_leak () =
  if not (Sys.file_exists "/proc/self/fd") then ()
  else
    with_dir "dsdg-fd-leak" (fun dir ->
        (* checkpoint_every 2: every other insert compacts the WAL,
           which used to leak the superseded out_channel's fd *)
        let d, _ = Durable.open_ ~config:(durable_cfg 2) ~dir () in
        ignore (Durable.insert d "warmup one");
        ignore (Durable.insert d "warmup two");
        let before = open_fds () in
        for i = 0 to 19 do
          ignore (Durable.insert d (Printf.sprintf "doc %d" i))
        done;
        let after = open_fds () in
        Alcotest.(check bool)
          (Printf.sprintf "fds stable across 10 compactions (%d -> %d)" before after)
          true
          (after <= before + 1);
        Durable.close d)

let test_gap_detected () =
  with_dir "dsdg-gap" (fun dir ->
      let d, _ = Durable.open_ ~config:(durable_cfg 4) ~sample:4 ~tau:4 ~dir () in
      for i = 0 to 11 do
        ignore (Durable.insert d (Printf.sprintf "doc %d" i))
      done;
      Durable.close d;
      (* delete every snapshot: the WAL has been compacted past serial 0,
         so its surviving records cannot stand alone *)
      List.iter (fun (p, _) -> Sys.remove p) (Snapshot.list ~dir);
      match Durable.open_ ~dir () with
      | d2, _ ->
        Durable.close d2;
        Alcotest.fail "snapshot/WAL gap not detected"
      | exception Recovery.Gap _ -> ())

(* --- WAL tailing (the replication read side) --- *)

let tail_texts recs = List.map (fun (s, op) -> (s, Trace.op_to_string op)) recs

(* A cursor positioned mid-file delivers exactly the records from its
   starting serial, and tiny read buffers that split records across
   chunk boundaries reassemble them byte-identically. *)
let test_wal_tail_midfile_and_straddle () =
  with_dir "dsdg-wal-tail" (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create path ~serial0:0 in
      let ops =
        List.init 9 (fun i ->
            if i mod 3 = 2 then Trace.Delete (i / 3)
            else Trace.Insert (Printf.sprintf "document-%d-%s" i (String.make (i * 3) 'x')))
      in
      List.iter (fun op -> ignore (Wal.append w op)) ops;
      (* mid-file start *)
      let c = Wal.tail ~from:4 path in
      let got = Wal.tail_poll c in
      Alcotest.(check int) "mid-file count" 5 (List.length got);
      Alcotest.(check (list (pair int string)))
        "mid-file records"
        (List.filteri (fun i _ -> i >= 4) ops
        |> List.mapi (fun i op -> (4 + i, Trace.op_to_string op)))
        (tail_texts got);
      Wal.tail_close c;
      (* 7-byte buffer: every record straddles chunk boundaries *)
      let c = Wal.tail ~buf_size:7 ~from:0 path in
      let got = Wal.tail_poll c in
      Alcotest.(check (list (pair int string)))
        "straddled records"
        (List.mapi (fun i op -> (i, Trace.op_to_string op)) ops)
        (tail_texts got);
      (* appends between polls are picked up by the next poll *)
      Alcotest.(check (list (pair int string))) "quiet poll" [] (tail_texts (Wal.tail_poll c));
      ignore (Wal.append w (Trace.Insert "late arrival"));
      ignore (Wal.append w (Trace.Delete 0));
      Alcotest.(check (list (pair int string)))
        "appended between polls"
        [ (9, {|+ "late arrival"|}); (10, "- 0") ]
        (tail_texts (Wal.tail_poll c));
      Wal.tail_close c;
      Wal.close w)

(* A final line with no newline yet -- a write in flight from a live
   writer, indistinguishable from a torn record -- is held back until
   its newline lands, then delivered whole. *)
let test_wal_tail_torn_final_writer_alive () =
  with_dir "dsdg-wal-tailtorn" (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create path ~serial0:0 in
      ignore (Wal.append w (Trace.Insert "whole"));
      let c = Wal.tail ~from:0 path in
      Alcotest.(check int) "whole record delivered" 1 (List.length (Wal.tail_poll c));
      (* hand-write a partial record, as if the writer died (or was
         scheduled out) mid-line *)
      let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
      Out_channel.output_string oc {|+ "half-wri|};
      Out_channel.flush oc;
      Alcotest.(check (list (pair int string)))
        "partial line held back" [] (tail_texts (Wal.tail_poll c));
      Out_channel.output_string oc "tten\"\n";
      Out_channel.flush oc;
      Out_channel.close oc;
      Alcotest.(check (list (pair int string)))
        "completed line delivered"
        [ (1, {|+ "half-written"|}) ]
        (tail_texts (Wal.tail_poll c));
      Wal.tail_close c;
      Wal.abandon w)

(* Compaction with archiving keeps the outgoing log as an immutable
   segment: every pre-checkpoint record stays readable, [archives]
   lists segments ascending, and pruning drops the oldest first. *)
let test_wal_archive_roundtrip () =
  with_dir "dsdg-wal-arch" (fun dir ->
      let cfg = { (durable_cfg 3) with Durable.wal_archives = 8 } in
      let d, _ = Durable.open_ ~config:cfg ~sample:4 ~tau:4 ~dir () in
      for i = 0 to 10 do
        ignore (Durable.insert d (Printf.sprintf "archived doc %d" i))
      done;
      let wal = Durable.wal_path d in
      let ar = Wal.archives wal in
      Alcotest.(check bool) "archives exist" true (List.length ar >= 2);
      let ends = List.map snd ar in
      Alcotest.(check (list int)) "ends ascending" (List.sort compare ends) ends;
      (* the archive chain + live log covers every serial exactly once
         per segment boundary: each segment starts where the previous
         one did its header, and the oldest starts at 0 *)
      let first = List.hd ar in
      let contents = Wal.read (fst first) in
      Alcotest.(check int) "oldest archive starts at serial 0" 0 contents.Wal.wc_serial0;
      Alcotest.(check bool)
        "oldest archive reaches its end serial" true
        (contents.Wal.wc_serial0 + List.length contents.Wal.wc_ops >= snd first);
      (* a tail cursor reads an archive segment like any log *)
      let c = Wal.tail ~from:1 (fst first) in
      let got = Wal.tail_poll c in
      Alcotest.(check bool) "archive tail delivers" true (List.length got > 0);
      Alcotest.(check int) "archive tail from serial 1" 1 (fst (List.hd got));
      Wal.tail_close c;
      Wal.prune_archives wal ~keep:1;
      Alcotest.(check int) "pruned to 1" 1 (List.length (Wal.archives wal));
      Wal.prune_archives wal ~keep:0;
      Alcotest.(check (list (pair string int))) "pruned to none" [] (Wal.archives wal);
      Durable.close d)

(* --- read-only recovery (satellite: observation never mutates) --- *)

let dir_bytes dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f ->
         let p = Filename.concat dir f in
         (f, if Sys.is_directory p then "<dir>" else read_file p))

let test_recovery_read_only_never_mutates () =
  with_dir "dsdg-ro" (fun dir ->
      let d, _ = Durable.open_ ~config:(durable_cfg 4) ~sample:4 ~tau:4 ~dir () in
      let m = Model.create () in
      for i = 0 to 9 do
        let id = Durable.insert d (Printf.sprintf "ro doc %d" i) in
        Alcotest.(check int) "id" (Model.insert m (Printf.sprintf "ro doc %d" i)) id
      done;
      ignore (Durable.delete d 3);
      ignore (Model.delete m 3);
      (* crash with a torn final record: the mutating path would
         truncate it; read-only must not *)
      Durable.kill d ~torn:true;
      let before = dir_bytes dir in
      let idx, info = Recovery.open_or_recover ~read_only:true ~dir () in
      Alcotest.(check bool) "torn tail reported" true info.Recovery.ri_truncated;
      assert_matches_model ~label:"read-only recovery" idx m ~inserts:10;
      Di.close idx;
      Alcotest.(check bool) "no byte changed on disk" true (dir_bytes dir = before);
      (* a second read-only pass sees the identical (untruncated) store *)
      let idx2, info2 = Recovery.open_or_recover ~read_only:true ~dir () in
      Alcotest.(check bool) "still reported torn" true info2.Recovery.ri_truncated;
      Di.close idx2;
      Alcotest.(check bool) "still unchanged" true (dir_bytes dir = before);
      (* the mutating open truncates (once) and yields the same state *)
      let d2, _ = Durable.open_ ~config:(durable_cfg 0) ~dir () in
      assert_matches_model ~label:"mutating recovery" (Durable.index d2) m ~inserts:10;
      Durable.close d2)

(* --- pinned-view backup --- *)

let test_durable_pin_backup () =
  with_dir "dsdg-pinback" (fun dir ->
      let dest = tmp_dir "dsdg-pinback-dest" in
      Fun.protect
        ~finally:(fun () -> Kill_check.reset_dir dest)
        (fun () ->
          let d, _ = Durable.open_ ~config:(durable_cfg 3) ~sample:4 ~tau:4 ~dir () in
          let m = Model.create () in
          for i = 0 to 7 do
            ignore (Durable.insert d (Printf.sprintf "pinned doc %d" i));
            ignore (Model.insert m (Printf.sprintf "pinned doc %d" i))
          done;
          ignore (Durable.delete d 2);
          ignore (Model.delete m 2);
          let p = Durable.pin d in
          let serial = Durable.pin_serial p in
          Alcotest.(check int) "pin serial = wal serial" (Durable.wal_serial d) serial;
          (* the writer moves on; checkpoints may evict the pinned epoch
             from the retention ring -- the pin must survive *)
          for i = 8 to 24 do
            ignore (Durable.insert d (Printf.sprintf "post-pin doc %d" i))
          done;
          ignore (Durable.delete d 0);
          let snap = Durable.backup d p ~dest in
          Alcotest.(check bool) "backup snapshot in dest" true (Filename.dirname snap = dest);
          Durable.unpin d p;
          Durable.close d;
          (* the backup opens as an ordinary store holding exactly the
             pinned state *)
          let b, info = Durable.open_ ~dir:dest () in
          Alcotest.(check int) "backup replays nothing" 0 info.Recovery.ri_replayed;
          assert_matches_model ~label:"backup state" (Durable.index b) m ~inserts:8;
          Durable.close b))

let suite =
  [
    Alcotest.test_case "codec primitives round-trip" `Quick test_codec_primitives;
    Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot corruption rejected" `Quick test_snapshot_corruption_rejected;
    Alcotest.test_case "snapshot truncation rejected" `Quick test_snapshot_truncation_rejected;
    Alcotest.test_case "relation codec round-trip" `Quick test_relation_roundtrip;
    Alcotest.test_case "dump/restore across variants x backends" `Quick test_dump_restore_matrix;
    Alcotest.test_case "wal round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal torn tail dropped + truncated" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal interior corruption located" `Quick test_wal_interior_corruption_located;
    Alcotest.test_case "wal missing header rejected" `Quick test_wal_missing_header;
    Alcotest.test_case "trace load locates parse errors" `Quick test_trace_load_located_error;
    Alcotest.test_case "durable reopen preserves state" `Quick test_durable_reopen;
    Alcotest.test_case "recovery is idempotent" `Quick test_recovery_idempotent;
    Alcotest.test_case "background checkpointing" `Quick test_background_checkpoint;
    Alcotest.test_case "kill-point sweep vs model" `Quick test_kill_sweep_matrix;
    Alcotest.test_case "wal Every-n accounting across batch/compaction/reopen" `Quick
      test_wal_every_n_accounting;
    Alcotest.test_case "wal group commit: one fsync per batch" `Quick
      test_wal_group_commit_single_fsync;
    Alcotest.test_case "durable apply_batch: order, rejection, replay" `Quick
      test_durable_apply_batch;
    Alcotest.test_case "checkpoint compaction leaks no fds" `Quick test_checkpoint_no_fd_leak;
    Alcotest.test_case "snapshot/wal gap detected" `Quick test_gap_detected;
    Alcotest.test_case "wal tail: mid-file start + chunk straddle + live appends" `Quick
      test_wal_tail_midfile_and_straddle;
    Alcotest.test_case "wal tail: torn final held back while writer alive" `Quick
      test_wal_tail_torn_final_writer_alive;
    Alcotest.test_case "wal archive segments round-trip + prune" `Quick test_wal_archive_roundtrip;
    Alcotest.test_case "read-only recovery never mutates disk" `Quick
      test_recovery_read_only_never_mutates;
    Alcotest.test_case "pinned-view backup opens at the pinned state" `Quick
      test_durable_pin_backup;
  ]
