(* Tests for dsdg_delbits (Reporter, Fenwick) and dsdg_incr (Incremental). *)

open Dsdg_delbits
open Dsdg_incr

let check = Alcotest.(check int)

(* --- Reporter --- *)

let test_reporter_basic () =
  let r = Reporter.create_full 200 in
  check "ones" 200 (Reporter.ones r);
  Reporter.zero r 5;
  Reporter.zero r 100;
  Reporter.zero r 199;
  check "ones after" 197 (Reporter.ones r);
  Alcotest.(check bool) "get 5" false (Reporter.get r 5);
  Alcotest.(check bool) "get 6" true (Reporter.get r 6);
  (* idempotent zero *)
  Reporter.zero r 5;
  check "idempotent" 197 (Reporter.ones r)

let test_reporter_report_range () =
  let r = Reporter.create_full 100 in
  for i = 0 to 99 do
    if i mod 3 <> 0 then Reporter.zero r i
  done;
  (* surviving: multiples of 3 *)
  let got = ref [] in
  Reporter.report r 10 50 (fun i -> got := i :: !got);
  let expected = List.filter (fun i -> i >= 10 && i < 50) (List.init 34 (fun k -> 3 * k)) in
  Alcotest.(check (list int)) "range" expected (List.rev !got)

let test_reporter_next_one () =
  let r = Reporter.create_full 500 in
  for i = 0 to 499 do
    if i <> 0 && i <> 250 && i <> 499 then Reporter.zero r i
  done;
  Alcotest.(check (option int)) "from 0" (Some 0) (Reporter.next_one r 0);
  Alcotest.(check (option int)) "from 1" (Some 250) (Reporter.next_one r 1);
  Alcotest.(check (option int)) "from 251" (Some 499) (Reporter.next_one r 251);
  Alcotest.(check (option int)) "past end" None (Reporter.next_one r 500);
  Reporter.zero r 499;
  Alcotest.(check (option int)) "after zero" None (Reporter.next_one r 251)

let test_reporter_empty_words () =
  (* zero out whole aligned word regions; summaries must skip them fast *)
  let r = Reporter.create_full 10000 in
  for i = 0 to 9999 do
    if i <> 9999 then Reporter.zero r i
  done;
  Alcotest.(check (option int)) "survivor" (Some 9999) (Reporter.next_one r 0);
  check "ones" 1 (Reporter.ones r)

let test_reporter_of_bitvec () =
  let open Dsdg_bits in
  let bv = Bitvec.of_bools [ true; false; true; true; false; false; true ] in
  let r = Reporter.of_bitvec bv in
  Alcotest.(check (list int)) "init" [ 0; 2; 3; 6 ] (Reporter.to_list r);
  Reporter.zero r 3;
  Alcotest.(check (list int)) "after zero" [ 0; 2; 6 ] (Reporter.to_list r)

(* Word-boundary lengths: the 62-bit last word is partial (len mod 62 <> 0),
   exactly full (len = 62), or absent (len = 0).  create_full and of_bitvec
   must agree and never count bits above [len]. *)
let test_reporter_partial_word_lengths () =
  let open Dsdg_bits in
  List.iter
    (fun len ->
      let r = Reporter.create_full len in
      check (Printf.sprintf "create_full %d ones" len) len (Reporter.ones r);
      check (Printf.sprintf "create_full %d count_range" len) len (Reporter.count_range r 0 len);
      Alcotest.(check (option int))
        (Printf.sprintf "create_full %d next_one" len)
        (if len = 0 then None else Some 0)
        (Reporter.next_one r 0);
      let bv = Bitvec.create len in
      Bitvec.fill_ones bv;
      let r' = Reporter.of_bitvec bv in
      check (Printf.sprintf "of_bitvec %d ones" len) len (Reporter.ones r');
      check (Printf.sprintf "of_bitvec %d count_range" len) len (Reporter.count_range r' 0 len);
      if len > 0 then begin
        (* zero the last valid bit; the structures above it must agree *)
        Reporter.zero r' (len - 1);
        check (Printf.sprintf "of_bitvec %d after zero" len) (len - 1) (Reporter.ones r');
        check (Printf.sprintf "of_bitvec %d count after zero" len) (len - 1)
          (Reporter.count_range r' 0 len)
      end)
    [ 0; 1; 61; 62; 63; 123; 124; 200 ]

let prop_reporter_count_range =
  QCheck.Test.make ~name:"reporter count_range matches naive" ~count:200
    QCheck.(triple (int_range 1 500) (list (int_bound 499)) (pair (int_bound 520) (int_bound 520)))
    (fun (n, zeros, (a, b)) ->
      let r = Reporter.create_full n in
      let alive = Array.make n true in
      List.iter
        (fun i ->
          if i < n then begin
            Reporter.zero r i;
            alive.(i) <- false
          end)
        zeros;
      let s = min a b and e = max a b in
      let naive = ref 0 in
      for i = max 0 s to min n (e + 1) - 1 do
        if i < e && alive.(i) then incr naive
      done;
      Reporter.count_range r s e = !naive)

let prop_reporter_vs_naive =
  QCheck.Test.make ~name:"reporter report/next_one match naive set" ~count:200
    QCheck.(pair (int_range 1 400) (list (int_bound 399)))
    (fun (n, zeros) ->
      let r = Reporter.create_full n in
      let alive = Array.make n true in
      List.iter
        (fun i ->
          if i < n then begin
            Reporter.zero r i;
            alive.(i) <- false
          end)
        zeros;
      let naive = List.filter (fun i -> alive.(i)) (List.init n (fun i -> i)) in
      let ok = ref (Reporter.to_list r = naive) in
      (* next_one from a few positions *)
      for p = 0 to min (n - 1) 50 do
        let naive_next =
          let rec go i = if i >= n then None else if alive.(i) then Some i else go (i + 1) in
          go p
        in
        if Reporter.next_one r p <> naive_next then ok := false
      done;
      !ok)

(* --- Fenwick --- *)

let test_fenwick_basic () =
  let f = Fenwick.create 10 in
  Fenwick.add f 0 5;
  Fenwick.add f 3 2;
  Fenwick.add f 9 1;
  check "prefix 0" 0 (Fenwick.prefix f 0);
  check "prefix 1" 5 (Fenwick.prefix f 1);
  check "prefix 4" 7 (Fenwick.prefix f 4);
  check "total" 8 (Fenwick.total f);
  check "range 1 10" 3 (Fenwick.range f 1 10);
  Fenwick.add f 3 (-2);
  check "after negative" 6 (Fenwick.total f)

let test_fenwick_ones () =
  let f = Fenwick.create_ones 100 in
  check "total" 100 (Fenwick.total f);
  check "prefix 37" 37 (Fenwick.prefix f 37);
  Fenwick.add f 10 (-1);
  check "range" 49 (Fenwick.range f 10 60)

let prop_fenwick =
  QCheck.Test.make ~name:"fenwick prefix sums match naive" ~count:200
    QCheck.(pair (int_range 1 100) (list (pair (int_bound 99) (int_range (-5) 5))))
    (fun (n, updates) ->
      let f = Fenwick.create n in
      let arr = Array.make n 0 in
      List.iter
        (fun (i, d) ->
          if i < n then begin
            Fenwick.add f i d;
            arr.(i) <- arr.(i) + d
          end)
        updates;
      let ok = ref true in
      let acc = ref 0 in
      for i = 0 to n do
        if Fenwick.prefix f i <> !acc then ok := false;
        if i < n then acc := !acc + arr.(i)
      done;
      !ok)

(* --- Fenwick.search + corrected space accounting --- *)

let test_fenwick_search () =
  let f = Fenwick.create 8 in
  List.iteri (fun i v -> Fenwick.add f i v) [ 3; 0; 2; 5; 0; 0; 1; 4 ];
  (* prefix sums: 0,3,3,5,10,10,10,11,15 *)
  List.iter
    (fun (k, want) -> check (Printf.sprintf "search %d" k) want (Fenwick.search f k))
    [ (0, 0); (2, 0); (3, 2); (4, 2); (5, 3); (9, 3); (10, 6); (11, 7); (14, 7) ];
  Alcotest.check_raises "search past total" (Invalid_argument "Fenwick.search")
    (fun () -> ignore (Fenwick.search f 15));
  Alcotest.check_raises "search negative" (Invalid_argument "Fenwick.search")
    (fun () -> ignore (Fenwick.search f (-1)))

let test_fenwick_space_bits () =
  let w = Dsdg_bits.Popcount.word_bits in
  (* n+1 tree slots, one word each, derived from word_bits -- the old
     figure multiplied by 63 and counted a phantom extra word *)
  check "space 10" (11 * w) (Fenwick.space_bits (Fenwick.create 10));
  check "space 1" (2 * w) (Fenwick.space_bits (Fenwick.create 1))

let test_reporter_space_bits () =
  let w = Dsdg_bits.Popcount.word_bits in
  let r = Reporter.create_full 1000 in
  let bits = Reporter.space_bits r in
  Alcotest.(check bool) "multiple of word_bits" true (bits mod w = 0);
  Alcotest.(check bool) "covers payload" true (bits >= 1000)

(* --- Sums: Fenwick and Spsi_sums behind one seam --- *)

let prop_sums_backends_agree =
  QCheck.Test.make ~name:"sums: avl(Fenwick) and spsi backends agree" ~count:150
    QCheck.(pair (int_range 1 300) (list (pair (int_bound 299) (int_range 0 9))))
    (fun (n, updates) ->
      let a = Sums.create Sums.Avl n and b = Sums.create Sums.Spsi n in
      let arr = Array.make n 0 in
      List.iter
        (fun (i, d) ->
          if i < n then begin
            Sums.add a i d;
            Sums.add b i d;
            arr.(i) <- arr.(i) + d
          end)
        updates;
      let ok = ref (Sums.total a = Sums.total b && Sums.length a = Sums.length b) in
      let acc = ref 0 in
      for i = 0 to n do
        if Sums.prefix a i <> !acc || Sums.prefix b i <> !acc then ok := false;
        if i < n then acc := !acc + arr.(i)
      done;
      (* search: for every k < total both must land on the same cell,
         and the cell must satisfy prefix(c) <= k < prefix(c+1) *)
      let total = Sums.total a in
      for k = 0 to min (total - 1) 500 do
        let ca = Sums.search a k and cb = Sums.search b k in
        if ca <> cb then ok := false;
        if not (Sums.prefix a ca <= k && k < Sums.prefix a (ca + 1)) then ok := false
      done;
      !ok)

let prop_spsi_sums_copy_isolated =
  QCheck.Test.make ~name:"spsi_sums: copy isolates the original" ~count:50
    QCheck.(int_range 1 200)
    (fun n ->
      let s = Spsi_sums.create n in
      for i = 0 to n - 1 do
        Spsi_sums.add s i (i mod 7)
      done;
      let c = Spsi_sums.copy s in
      for i = 0 to n - 1 do
        Spsi_sums.add s i 1
      done;
      let ok = ref true in
      for i = 0 to n do
        let expect = ref 0 in
        for j = 0 to i - 1 do
          expect := !expect + (j mod 7)
        done;
        if Spsi_sums.prefix c i <> !expect then ok := false
      done;
      !ok)

(* --- Incremental --- *)

let test_incremental_steps () =
  (* a job that needs exactly 100 ticks *)
  let job =
    Incremental.create (fun tick ->
        let acc = ref 0 in
        for i = 1 to 100 do
          tick ();
          acc := !acc + i
        done;
        !acc)
  in
  Alcotest.(check bool) "not finished" false (Incremental.is_finished job);
  (* 30 + 30 + 30 budgets: not yet done *)
  let r1 = Incremental.step job ~budget:30 in
  Alcotest.(check bool) "more 1" true (r1 = `More);
  let r2 = Incremental.step job ~budget:30 in
  Alcotest.(check bool) "more 2" true (r2 = `More);
  let r3 = Incremental.step job ~budget:30 in
  Alcotest.(check bool) "more 3" true (r3 = `More);
  (match Incremental.step job ~budget:30 with
  | `Done v -> check "sum" 5050 v
  | `More -> Alcotest.fail "should be done");
  check "spent" 100 (Incremental.work_spent job);
  (* stepping a finished job returns its value *)
  (match Incremental.step job ~budget:1 with
  | `Done v -> check "again" 5050 v
  | `More -> Alcotest.fail "finished job said More")

let test_incremental_force () =
  let job = Incremental.create (fun tick -> for _ = 1 to 1000 do tick () done; "done") in
  ignore (Incremental.step job ~budget:10);
  Alcotest.(check string) "force" "done" (Incremental.force job)

let test_incremental_zero_work () =
  let job = Incremental.create (fun _tick -> 42) in
  (match Incremental.step job ~budget:1 with
  | `Done v -> check "imm" 42 v
  | `More -> Alcotest.fail "no ticks should finish immediately")

let test_incremental_abandon () =
  let cleanup = ref false in
  let job =
    Incremental.create (fun tick ->
        Fun.protect ~finally:(fun () -> cleanup := true) (fun () ->
            for _ = 1 to 1000 do tick () done;
            0))
  in
  ignore (Incremental.step job ~budget:5);
  Incremental.abandon job;
  Alcotest.(check bool) "finalizer ran" true !cleanup;
  Alcotest.check_raises "step after abandon" Incremental.Cancelled (fun () ->
      ignore (Incremental.step job ~budget:1))

let test_incremental_sais () =
  (* a real builder run incrementally must give the same result *)
  let open Dsdg_sa in
  let s = Array.init 500 (fun i -> (i * 7) mod 5) in
  let job = Incremental.create (fun tick -> Sais.suffix_array ~tick s) in
  let steps = ref 0 in
  let rec drive () =
    match Incremental.step job ~budget:97 with
    | `Done sa -> sa
    | `More ->
      incr steps;
      drive ()
  in
  let sa = drive () in
  Alcotest.(check bool) "many steps" true (!steps > 10);
  Alcotest.(check (array int)) "same result" (Sais.naive s) sa

let prop_incremental_budget_respected =
  QCheck.Test.make ~name:"incremental: per-step work <= budget" ~count:50
    QCheck.(pair (int_range 1 50) (int_range 51 500))
    (fun (budget, work) ->
      let job = Incremental.create (fun tick -> for _ = 1 to work do tick () done) in
      let ok = ref true in
      let rec drive () =
        let before = Incremental.work_spent job in
        match Incremental.step job ~budget with
        | `Done () -> if Incremental.work_spent job - before > budget then ok := false
        | `More ->
          if Incremental.work_spent job - before > budget then ok := false;
          drive ()
      in
      drive ();
      !ok && Incremental.work_spent job = work)

let qsuite =
  List.map Qc.to_alcotest
    [ prop_reporter_vs_naive; prop_reporter_count_range; prop_fenwick;
      prop_sums_backends_agree; prop_spsi_sums_copy_isolated;
      prop_incremental_budget_respected ]

let suite =
  [ ("reporter basic", `Quick, test_reporter_basic);
    ("reporter report range", `Quick, test_reporter_report_range);
    ("reporter next_one", `Quick, test_reporter_next_one);
    ("reporter empty words", `Quick, test_reporter_empty_words);
    ("reporter of_bitvec", `Quick, test_reporter_of_bitvec);
    ("reporter partial last word", `Quick, test_reporter_partial_word_lengths);
    ("fenwick basic", `Quick, test_fenwick_basic);
    ("fenwick ones", `Quick, test_fenwick_ones);
    ("fenwick search", `Quick, test_fenwick_search);
    ("fenwick space_bits", `Quick, test_fenwick_space_bits);
    ("reporter space_bits", `Quick, test_reporter_space_bits);
    ("incremental steps", `Quick, test_incremental_steps);
    ("incremental force", `Quick, test_incremental_force);
    ("incremental zero work", `Quick, test_incremental_zero_work);
    ("incremental abandon", `Quick, test_incremental_abandon);
    ("incremental sais", `Quick, test_incremental_sais) ]
  @ qsuite
