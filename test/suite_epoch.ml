(* Epoch retention, point-in-time queries, and pins on the core index:
   the ring keeps the n newest published views resolvable, [query
   ~epoch] answers byte-identically to a fresh replay of the op-trace
   prefix that produced the epoch, and a pin shields one view from
   eviction until unpinned. *)

open Dsdg_core
module Di = Dynamic_index

type op = I of string | D of int

let apply idx = function
  | I s -> ignore (Di.insert idx s)
  | D id ->
    if not (Di.delete idx id) then Alcotest.failf "delete %d refused" id

let live_epoch idx = Di.view_epoch (Di.view idx)

(* a churny little trace: ids are assigned sequentially by insert, so
   replaying any prefix on a fresh index reproduces the same ids *)
let trace =
  [ I "banana"; I "bandana"; I "ananas"; D 1; I "cabana"; I "radar";
    D 0; I "abracadabra"; D 4; I "dorado"; I "banister"; D 2;
    I "anagram"; I "saraband"; D 7; I "urbane" ]

let patterns = [ "a"; "an"; "ana"; "ban"; "na"; "ra"; "do"; "x"; "band" ]

(* every observable answer of a view, as one comparable value *)
let fingerprint ~max_doc v =
  let searches = List.map (fun p -> (p, Di.view_search v p)) patterns in
  let docs =
    List.init (max_doc + 1) (fun d ->
        (Di.view_mem v d, Di.view_extract v ~doc:d ~off:0 ~len:64))
  in
  (Di.view_epoch v, Di.view_doc_count v, Di.view_total_symbols v, searches, docs)

(* --- retention ring bounds and view_at hit/miss --- *)

let test_retention_ring () =
  let idx = Di.create ~retain_epochs:3 () in
  Alcotest.(check int) "retain_epochs" 3 (Di.retain_epochs idx);
  Alcotest.(check (list int)) "empty index retains its live epoch" [ 0 ] (Di.retained idx);
  let docs_at = Hashtbl.create 32 in
  Hashtbl.replace docs_at 0 0;
  List.iteri
    (fun i op ->
      apply idx op;
      let e = live_epoch idx in
      Alcotest.(check int) "one epoch per update" (i + 1) e;
      Hashtbl.replace docs_at e (Di.doc_count idx);
      let r = Di.retained idx in
      Alcotest.(check bool) "live epoch retained" true (List.mem e r);
      Alcotest.(check bool) "ring bounded" true (List.length r <= 3);
      Alcotest.(check (list int)) "ascending" (List.sort compare r) r)
    trace;
  let last = live_epoch idx in
  (* the 3 newest published views (the live one included) resolve;
     anything older misses *)
  for e = 0 to last do
    match Di.view_at idx ~epoch:e with
    | Some v ->
      Alcotest.(check bool) "hit is recent" true (e >= last - 2);
      Alcotest.(check int) "hit epoch" e (Di.view_epoch v);
      Alcotest.(check int) (Printf.sprintf "doc_count at %d" e)
        (Hashtbl.find docs_at e) (Di.view_doc_count v)
    | None -> Alcotest.(check bool) "miss is old" true (e < last - 2)
  done;
  (* an epoch the writer never published misses too *)
  Alcotest.(check bool) "future epoch misses" true (Di.view_at idx ~epoch:(last + 1) = None)

let test_retain_nothing () =
  let idx = Di.create () in
  Alcotest.(check int) "default retains nothing" 0 (Di.retain_epochs idx);
  List.iter (apply idx) trace;
  let last = live_epoch idx in
  Alcotest.(check (list int)) "only the live view" [ last ] (Di.retained idx);
  Alcotest.(check bool) "previous epoch gone" true (Di.view_at idx ~epoch:(last - 1) = None);
  Alcotest.(check bool) "live epoch resolves" true (Di.view_at idx ~epoch:last <> None)

(* --- acceptance criterion: query ~epoch = trace-prefix replay --- *)

let test_query_epoch_matches_prefix_replay () =
  let idx = Di.create ~retain_epochs:(List.length trace) () in
  List.iter (apply idx) trace;
  let max_doc = List.length (List.filter (function I _ -> true | D _ -> false) trace) in
  List.iter
    (fun epoch ->
      (* state after [epoch] updates = replay of the first [epoch] ops *)
      let fresh = Di.create () in
      List.iteri (fun i op -> if i < epoch then apply fresh op) trace;
      Alcotest.(check int) "replay lands on the epoch" epoch (live_epoch fresh);
      let expected = Di.query fresh (fingerprint ~max_doc) in
      let got = Di.query ~epoch idx (fingerprint ~max_doc) in
      if got <> expected then
        Alcotest.failf "query ~epoch:%d diverges from prefix replay" epoch)
    (Di.retained idx)

(* --- pins survive eviction --- *)

let test_pin_survives_eviction () =
  let idx = Di.create ~retain_epochs:2 () in
  let prefix = [ I "banana"; I "bandana"; I "ananas" ] in
  List.iter (apply idx) prefix;
  let e3 = live_epoch idx in
  let pin = Di.pin idx in
  Alcotest.(check int) "pin_epoch" e3 (Di.pin_epoch pin);
  Alcotest.(check int) "pinned_count" 1 (Di.pinned_count idx);
  List.iteri (fun i op -> if i >= 3 then apply idx op) trace;
  let last = live_epoch idx in
  Alcotest.(check bool) "pin far behind the ring" true (e3 < last - 1);
  (* the pinned epoch still resolves, and answers like the prefix *)
  Alcotest.(check bool) "retained lists the pin" true (List.mem e3 (Di.retained idx));
  (match Di.view_at idx ~epoch:e3 with
  | None -> Alcotest.fail "pinned epoch evicted"
  | Some v ->
    Alcotest.(check int) "pinned doc_count" 3 (Di.view_doc_count v);
    let fresh = Di.create () in
    List.iter (apply fresh) prefix;
    let expected = Di.query fresh (fingerprint ~max_doc:3) in
    Alcotest.(check bool) "pinned view = prefix replay" true
      (fingerprint ~max_doc:3 (Di.pin_view pin) = expected
      && fingerprint ~max_doc:3 v = expected));
  Di.unpin idx pin;
  Di.unpin idx pin;
  (* idempotent *)
  Alcotest.(check int) "unpinned" 0 (Di.pinned_count idx);
  Alcotest.(check bool) "evicted after unpin" true (Di.view_at idx ~epoch:e3 = None)

let test_pin_retained_epoch () =
  let idx = Di.create ~retain_epochs:4 () in
  List.iter (apply idx) [ I "banana"; I "bandana"; I "ananas"; D 1 ];
  (* pin a ring slot, not the live view *)
  let pin = Di.pin ~epoch:2 idx in
  Alcotest.(check int) "pin_epoch" 2 (Di.pin_epoch pin);
  List.iter (apply idx) [ I "cabana"; I "radar"; D 0; I "abracadabra"; I "dorado" ];
  (match Di.view_at idx ~epoch:2 with
  | None -> Alcotest.fail "pinned ring epoch evicted"
  | Some v -> Alcotest.(check int) "doc_count at pinned epoch" 2 (Di.view_doc_count v));
  Di.unpin idx pin;
  Alcotest.(check bool) "gone after unpin" true (Di.view_at idx ~epoch:2 = None)

(* --- misses raise from query ~epoch --- *)

let test_query_epoch_invalid () =
  let idx = Di.create ~retain_epochs:2 () in
  List.iter (apply idx) [ I "banana"; I "bandana"; I "ananas" ];
  List.iter
    (fun epoch ->
      match Di.query ~epoch idx Di.view_doc_count with
      | _ -> Alcotest.failf "query ~epoch:%d should raise" epoch
      | exception Invalid_argument _ -> ())
    [ 0; 1; 99 ];
  (* the live epoch and the one ring slot still answer *)
  Alcotest.(check int) "ring slot" 2 (Di.query ~epoch:2 idx Di.view_doc_count);
  Alcotest.(check int) "live" 3 (Di.query ~epoch:3 idx Di.view_doc_count)

let suite =
  [ Alcotest.test_case "retention ring bounds + view_at hit/miss" `Quick test_retention_ring;
    Alcotest.test_case "retain_epochs 0 retains nothing" `Quick test_retain_nothing;
    Alcotest.test_case "query ~epoch = trace-prefix replay" `Quick
      test_query_epoch_matches_prefix_replay;
    Alcotest.test_case "pin survives ring eviction" `Quick test_pin_survives_eviction;
    Alcotest.test_case "pin a retained (non-live) epoch" `Quick test_pin_retained_epoch;
    Alcotest.test_case "query ~epoch on a missed epoch raises" `Quick test_query_epoch_invalid ]
