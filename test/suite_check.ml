(* Differential checking suite (lib/check wired into dune runtest):
   bounded fuzz streams across the variant x backend matrix, unit tests
   for the trace / opgen / shrink machinery, and a planted-fault
   self-test proving the harness catches real scheduling bugs.

   Budget knobs for nightly CI: FUZZ_STREAMS, FUZZ_OPS, FUZZ_SEED. *)

open Dsdg_check

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)

let base_seed = env_int "FUZZ_SEED" 42
let n_streams = env_int "FUZZ_STREAMS" 200
let ops_per_stream = env_int "FUZZ_OPS" 60

(* On failure, print everything needed to reproduce without rerunning
   the suite: the seed, the saved minimal trace and the replay command. *)
let fail_stream ~seed ~failure ~shrunk =
  let path = Filename.temp_file "dsdg-fuzz-runtest" ".trace" in
  Trace.save path shrunk;
  let variant, backend =
    match String.index_opt failure.Runner.f_target '/' with
    | Some i ->
      ( String.sub failure.Runner.f_target 0 i,
        String.sub failure.Runner.f_target (i + 1)
          (String.length failure.Runner.f_target - i - 1) )
    | None -> ("all", "all")
  in
  Alcotest.failf "%strace saved to %s\nreplay: dsdg fuzz --replay %s --variant %s --backend %s"
    (Runner.report ~seed ~failure ~shrunk ())
    path path variant backend

(* The bulk run: each stream drives one variant x backend pair
   (round-robin over all nine) so the whole matrix is covered every
   nine streams; every third stream uses the delete-heavy profile. *)
let test_fuzz_matrix () =
  let n_targets = List.length Runner.all_targets in
  for i = 0 to n_streams - 1 do
    let seed = base_seed + i in
    let targets = [ List.nth Runner.all_targets (i mod n_targets) ] in
    let profile = if i mod 3 = 2 then Opgen.churny else Opgen.default in
    match Runner.run_stream ~targets ~profile ~seed ~ops:ops_per_stream () with
    | Runner.Pass -> ()
    | Runner.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
  done

(* A few streams against all nine targets at once: cross-structure
   disagreement (not just structure vs model) is only visible here. *)
let test_fuzz_cross_targets () =
  for i = 0 to 2 do
    let seed = base_seed + 1000 + i in
    match
      Runner.run_stream ~targets:Runner.all_targets ~seed ~ops:(2 * ops_per_stream) ()
    with
    | Runner.Pass -> ()
    | Runner.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
  done

(* --- machinery unit tests --- *)

let test_trace_roundtrip () =
  let ops =
    [ Trace.Insert "plain";
      Trace.Insert "";
      Trace.Insert "with \"quotes\" and \\ and \n newline";
      Trace.Delete 3;
      Trace.Search "ab\"cd";
      Trace.Count "";
      Trace.Extract { doc = 2; off = 0; len = 5 };
      Trace.Mem 17 ]
  in
  let reparsed = List.map (fun op -> Trace.op_of_string (Trace.op_to_string op)) ops in
  Alcotest.(check bool) "to_string/of_string round-trips" true (reparsed = ops);
  let path = Filename.temp_file "dsdg-trace" ".trace" in
  Trace.save path ops;
  let loaded = Trace.load path in
  Sys.remove path;
  Alcotest.(check bool) "save/load round-trips" true (loaded = ops)

let test_opgen_deterministic () =
  let a = Opgen.generate ~seed:7 ~ops:300 () in
  let b = Opgen.generate ~seed:7 ~ops:300 () in
  let c = Opgen.generate ~seed:8 ~ops:300 () in
  Alcotest.(check int) "requested length" 300 (List.length a);
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  Alcotest.(check bool) "different seed, different stream" true (a <> c)

let test_opgen_adversarial_cases () =
  (* the generator must actually produce its advertised edge cases *)
  let ops = Opgen.generate ~seed:11 ~ops:4000 () in
  let inserts = List.filter_map (function Trace.Insert s -> Some s | _ -> None) ops in
  Alcotest.(check bool) "empty docs appear" true (List.exists (fun s -> s = "") inserts);
  Alcotest.(check bool) "oversized docs appear" true
    (List.exists (fun s -> String.length s >= 256) inserts);
  let tbl = Hashtbl.create 64 in
  let dup = ref false in
  List.iter
    (fun s ->
      if s <> "" then begin
        if Hashtbl.mem tbl s then dup := true;
        Hashtbl.replace tbl s ()
      end)
    inserts;
  Alcotest.(check bool) "duplicate texts appear" true !dup;
  Alcotest.(check bool) "deletes appear" true
    (List.exists (function Trace.Delete _ -> true | _ -> false) ops)

let test_model_semantics () =
  let m = Model.create () in
  let a = Model.insert m "banana" in
  let b = Model.insert m "bandana" in
  Alcotest.(check int) "sequential ids" 1 b;
  Alcotest.(check (list (pair int int))) "search"
    [ (a, 1); (a, 3); (b, 1); (b, 4) ]
    (Model.search m "an");
  Alcotest.(check int) "count" 4 (Model.count m "an");
  Alcotest.(check (option string)) "extract" (Some "nan") (Model.extract m ~doc:a ~off:2 ~len:3);
  Alcotest.(check (option string)) "extract out of range" None (Model.extract m ~doc:a ~off:4 ~len:5);
  Alcotest.(check bool) "delete" true (Model.delete m a);
  Alcotest.(check bool) "delete twice" false (Model.delete m a);
  Alcotest.(check (option string)) "extract dead" None (Model.extract m ~doc:a ~off:0 ~len:1);
  Alcotest.(check int) "doc_count" 1 (Model.doc_count m);
  Alcotest.(check int) "total_symbols" 8 (Model.total_symbols m)

(* Plant the skip-top-clean fault and demand the whole pipeline works:
   the schedule oracle trips, the trace shrinks, the minimal trace
   replays to a failure with the fault and runs clean without it. *)
let test_planted_fault_caught () =
  let config = { Runner.default_config with Runner.fault = Some `Skip_top_clean } in
  let targets = Runner.select_targets ~variant:"worst-case" ~backend:"fm" () in
  let rec hunt seed =
    if seed > base_seed + 9 then
      Alcotest.fail "planted skip-top-clean fault never caught in 10 churny streams"
    else
      match Runner.run_stream ~config ~targets ~profile:Opgen.churny ~seed ~ops:600 () with
      | Runner.Pass -> hunt (seed + 1)
      | Runner.Fail { failure = _; shrunk; trace } ->
        Alcotest.(check bool) "shrunk trace nonempty" true (shrunk <> []);
        Alcotest.(check bool) "shrinking did not grow the trace" true
          (List.length shrunk <= List.length trace);
        let path = Filename.temp_file "dsdg-fault" ".trace" in
        Trace.save path shrunk;
        let reloaded = Trace.load path in
        Sys.remove path;
        Alcotest.(check bool) "minimal trace round-trips" true (reloaded = shrunk);
        (match Runner.run_trace ~config ~targets reloaded with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "replayed minimal trace no longer fails under the fault");
        (match Runner.run_trace ~targets reloaded with
        | Ok () -> ()
        | Error f ->
          Alcotest.failf "minimal trace fails even without the fault: %s" f.Runner.f_message)
  in
  hunt base_seed

let suite =
  [ ("trace round-trip", `Quick, test_trace_roundtrip);
    ("opgen deterministic", `Quick, test_opgen_deterministic);
    ("opgen adversarial cases", `Quick, test_opgen_adversarial_cases);
    ("model semantics", `Quick, test_model_semantics);
    ("planted fault caught & shrunk", `Slow, test_planted_fault_caught);
    ("fuzz cross-target streams", `Slow, test_fuzz_cross_targets);
    ("fuzz matrix streams", `Slow, test_fuzz_matrix) ]
