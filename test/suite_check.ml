(* Differential checking suite (lib/check wired into dune runtest):
   bounded fuzz streams across the variant x backend matrix, unit tests
   for the trace / opgen / shrink machinery, and a planted-fault
   self-test proving the harness catches real scheduling bugs.

   Budget knobs for nightly CI: FUZZ_STREAMS, FUZZ_OPS, FUZZ_SEED;
   DSDG_JOBS (default 0 = deterministic Sync executor) reruns the whole
   matrix with pooled background rebuilds; DSDG_READERS (default 0 =
   queries on the caller's domain) reruns it with every query routed
   through a reader pool against the latest published epoch. *)

open Dsdg_check
module DI = Dsdg_core.Dynamic_index

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)

let base_seed = env_int "FUZZ_SEED" 42
let n_streams = env_int "FUZZ_STREAMS" 200
let ops_per_stream = env_int "FUZZ_OPS" 60
let jobs = env_int "DSDG_JOBS" 0
let readers = env_int "DSDG_READERS" 0

(* DSDG_SEQ_BACKEND=spsi reruns the whole matrix on the B-tree
   dynamic-sequence substrate (the CI job does exactly that). *)
let seq =
  match Sys.getenv_opt "DSDG_SEQ_BACKEND" with
  | None -> Dsdg_delbits.Sums.Avl
  | Some s -> (
    match Dsdg_delbits.Sums.kind_of_string s with
    | Some k -> k
    | None -> failwith ("unknown DSDG_SEQ_BACKEND: " ^ s))

let base_config = { Runner.default_config with Runner.jobs; Runner.readers; seq }

(* On failure, print everything needed to reproduce without rerunning
   the suite: the seed, the saved minimal trace and the replay command. *)
let fail_stream ~seed ~failure ~shrunk =
  let path = Filename.temp_file "dsdg-fuzz-runtest" ".trace" in
  Trace.save path shrunk;
  let variant, backend =
    match String.index_opt failure.Runner.f_target '/' with
    | Some i ->
      ( String.sub failure.Runner.f_target 0 i,
        String.sub failure.Runner.f_target (i + 1)
          (String.length failure.Runner.f_target - i - 1) )
    | None -> ("all", "all")
  in
  Alcotest.failf "%strace saved to %s\nreplay: dsdg fuzz --replay %s --variant %s --backend %s"
    (Runner.report ~seed ~failure ~shrunk ())
    path path variant backend

(* The bulk run: each stream drives one variant x backend pair
   (round-robin over all nine) so the whole matrix is covered every
   nine streams; every third stream uses the delete-heavy profile. *)
let test_fuzz_matrix () =
  let n_targets = List.length Runner.all_targets in
  for i = 0 to n_streams - 1 do
    let seed = base_seed + i in
    let targets = [ List.nth Runner.all_targets (i mod n_targets) ] in
    let profile = if i mod 3 = 2 then Opgen.churny else Opgen.default in
    match Runner.run_stream ~config:base_config ~targets ~profile ~seed ~ops:ops_per_stream () with
    | Runner.Pass -> ()
    | Runner.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
  done

(* A few streams against all nine targets at once: cross-structure
   disagreement (not just structure vs model) is only visible here. *)
let test_fuzz_cross_targets () =
  for i = 0 to 2 do
    let seed = base_seed + 1000 + i in
    match
      Runner.run_stream ~config:base_config ~targets:Runner.all_targets ~seed
        ~ops:(2 * ops_per_stream) ()
    with
    | Runner.Pass -> ()
    | Runner.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
  done

(* A handful of streams forced onto the SPSI substrate regardless of
   the environment: the differential matrix must hold on both dynamic-
   sequence backends in every run, not only in the dedicated CI leg. *)
let test_fuzz_spsi_streams () =
  let config = { base_config with Runner.seq = Dsdg_delbits.Sums.Spsi } in
  let n_targets = List.length Runner.all_targets in
  for i = 0 to 8 do
    let seed = base_seed + 2000 + i in
    let targets = [ List.nth Runner.all_targets (i mod n_targets) ] in
    let profile = if i mod 3 = 2 then Opgen.churny else Opgen.default in
    match Runner.run_stream ~config ~targets ~profile ~seed ~ops:ops_per_stream () with
    | Runner.Pass -> ()
    | Runner.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
  done

(* --- machinery unit tests --- *)

let test_trace_roundtrip () =
  let ops =
    [ Trace.Insert "plain";
      Trace.Insert "";
      Trace.Insert "with \"quotes\" and \\ and \n newline";
      Trace.Delete 3;
      Trace.Search "ab\"cd";
      Trace.Count "";
      Trace.Extract { doc = 2; off = 0; len = 5 };
      Trace.Mem 17;
      Trace.Drain ]
  in
  let reparsed = List.map (fun op -> Trace.op_of_string (Trace.op_to_string op)) ops in
  Alcotest.(check bool) "to_string/of_string round-trips" true (reparsed = ops);
  let path = Filename.temp_file "dsdg-trace" ".trace" in
  Trace.save path ops;
  let loaded = Trace.load path in
  Sys.remove path;
  Alcotest.(check bool) "save/load round-trips" true (loaded = ops)

let test_opgen_deterministic () =
  let a = Opgen.generate ~seed:7 ~ops:300 () in
  let b = Opgen.generate ~seed:7 ~ops:300 () in
  let c = Opgen.generate ~seed:8 ~ops:300 () in
  Alcotest.(check int) "requested length" 300 (List.length a);
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  Alcotest.(check bool) "different seed, different stream" true (a <> c)

let test_opgen_adversarial_cases () =
  (* the generator must actually produce its advertised edge cases *)
  let ops = Opgen.generate ~seed:11 ~ops:4000 () in
  let inserts = List.filter_map (function Trace.Insert s -> Some s | _ -> None) ops in
  Alcotest.(check bool) "empty docs appear" true (List.exists (fun s -> s = "") inserts);
  Alcotest.(check bool) "oversized docs appear" true
    (List.exists (fun s -> String.length s >= 256) inserts);
  let tbl = Hashtbl.create 64 in
  let dup = ref false in
  List.iter
    (fun s ->
      if s <> "" then begin
        if Hashtbl.mem tbl s then dup := true;
        Hashtbl.replace tbl s ()
      end)
    inserts;
  Alcotest.(check bool) "duplicate texts appear" true !dup;
  Alcotest.(check bool) "deletes appear" true
    (List.exists (function Trace.Delete _ -> true | _ -> false) ops)

let test_model_semantics () =
  let m = Model.create () in
  let a = Model.insert m "banana" in
  let b = Model.insert m "bandana" in
  Alcotest.(check int) "sequential ids" 1 b;
  Alcotest.(check (list (pair int int))) "search"
    [ (a, 1); (a, 3); (b, 1); (b, 4) ]
    (Model.search m "an");
  Alcotest.(check int) "count" 4 (Model.count m "an");
  Alcotest.(check (option string)) "extract" (Some "nan") (Model.extract m ~doc:a ~off:2 ~len:3);
  Alcotest.(check (option string)) "extract out of range" None (Model.extract m ~doc:a ~off:4 ~len:5);
  Alcotest.(check bool) "delete" true (Model.delete m a);
  Alcotest.(check bool) "delete twice" false (Model.delete m a);
  Alcotest.(check (option string)) "extract dead" None (Model.extract m ~doc:a ~off:0 ~len:1);
  Alcotest.(check int) "doc_count" 1 (Model.doc_count m);
  Alcotest.(check int) "total_symbols" 8 (Model.total_symbols m)

(* Plant the skip-top-clean fault and demand the whole pipeline works:
   the schedule oracle trips, the trace shrinks, the minimal trace
   replays to a failure with the fault and runs clean without it. *)
let test_planted_fault_caught () =
  let config = { Runner.default_config with Runner.fault = Some `Skip_top_clean } in
  let targets = Runner.select_targets ~variant:"worst-case" ~backend:"fm" () in
  let rec hunt seed =
    if seed > base_seed + 9 then
      Alcotest.fail "planted skip-top-clean fault never caught in 10 churny streams"
    else
      match Runner.run_stream ~config ~targets ~profile:Opgen.churny ~seed ~ops:600 () with
      | Runner.Pass -> hunt (seed + 1)
      | Runner.Fail { failure = _; shrunk; trace } ->
        Alcotest.(check bool) "shrunk trace nonempty" true (shrunk <> []);
        Alcotest.(check bool) "shrinking did not grow the trace" true
          (List.length shrunk <= List.length trace);
        let path = Filename.temp_file "dsdg-fault" ".trace" in
        Trace.save path shrunk;
        let reloaded = Trace.load path in
        Sys.remove path;
        Alcotest.(check bool) "minimal trace round-trips" true (reloaded = shrunk);
        (match Runner.run_trace ~config ~targets reloaded with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "replayed minimal trace no longer fails under the fault");
        (match Runner.run_trace ~targets reloaded with
        | Ok () -> ()
        | Error f ->
          Alcotest.failf "minimal trace fails even without the fault: %s" f.Runner.f_message)
  in
  hunt base_seed

(* Transformation 3 smoke: bounded streams pinned to the loglog
   (doubling-schedule) variant across every backend, so tier-1 always
   differentially checks T3 directly even when FUZZ_STREAMS trims the
   round-robin matrix below full coverage. *)
let test_fuzz_t3_streams () =
  List.iteri
    (fun i backend ->
      let targets = Runner.select_targets ~variant:"loglog" ~backend () in
      for j = 0 to 9 do
        let seed = base_seed + 4000 + (100 * i) + j in
        let profile = if j mod 3 = 2 then Opgen.churny else Opgen.default in
        match
          Runner.run_stream ~config:base_config ~targets ~profile ~seed ~ops:ops_per_stream ()
        with
        | Runner.Pass -> ()
        | Runner.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
      done)
    [ "fm"; "sa"; "csa" ]

(* Pooled executor smoke: a bounded batch of streams with worker
   domains on, regardless of DSDG_JOBS, so tier-1 always exercises the
   background-rebuild path (round-robin over the matrix). *)
let test_fuzz_pooled_smoke () =
  let config = { Runner.default_config with Runner.jobs = max 1 jobs } in
  let n_targets = List.length Runner.all_targets in
  for i = 0 to 19 do
    let seed = base_seed + 2000 + i in
    let targets = [ List.nth Runner.all_targets (i mod n_targets) ] in
    let profile = if i mod 3 = 2 then Opgen.churny else Opgen.default in
    match Runner.run_stream ~config ~targets ~profile ~seed ~ops:ops_per_stream () with
    | Runner.Pass -> ()
    | Runner.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
  done

(* Plant the worker-crash fault (a pooled rebuild dies and its result is
   dropped instead of recovered) and demand the full catch -> shrink ->
   replay pipeline works, exactly as for the scheduling fault above. *)
let test_planted_worker_crash_caught () =
  let config = { Runner.default_config with Runner.fault = Some `Worker_crash; Runner.jobs = 1 } in
  let clean_config = { Runner.default_config with Runner.jobs = 1 } in
  let targets = Runner.select_targets ~variant:"worst-case" ~backend:"fm" () in
  let rec hunt seed =
    if seed > base_seed + 9 then
      Alcotest.fail "planted worker-crash fault never caught in 10 streams"
    else
      match Runner.run_stream ~config ~targets ~seed ~ops:300 () with
      | Runner.Pass -> hunt (seed + 1)
      | Runner.Fail { failure = _; shrunk; trace } ->
        Alcotest.(check bool) "shrunk trace nonempty" true (shrunk <> []);
        Alcotest.(check bool) "shrinking did not grow the trace" true
          (List.length shrunk <= List.length trace);
        (match Runner.run_trace ~config ~targets shrunk with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "replayed minimal trace no longer fails under the fault");
        (match Runner.run_trace ~config:clean_config ~targets shrunk with
        | Ok () -> ()
        | Error f ->
          Alcotest.failf "minimal trace fails even without the fault: %s" f.Runner.f_message)
  in
  hunt base_seed

(* Reader-routed smoke: a bounded batch of streams with every query op
   served from a reader-pool domain against the latest published epoch,
   regardless of DSDG_READERS, so tier-1 always differentially checks
   the read plane itself (round-robin over the matrix). *)
let test_fuzz_readers_smoke () =
  let config = { Runner.default_config with Runner.readers = max 1 readers } in
  let n_targets = List.length Runner.all_targets in
  for i = 0 to 19 do
    let seed = base_seed + 3000 + i in
    let targets = [ List.nth Runner.all_targets (i mod n_targets) ] in
    let profile = if i mod 3 = 2 then Opgen.churny else Opgen.default in
    match Runner.run_stream ~config ~targets ~profile ~seed ~ops:ops_per_stream () with
    | Runner.Pass -> ()
    | Runner.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
  done

(* Plant the stale-epoch fault (successful deletes mutate the write
   plane but skip epoch publication, so published views silently go
   stale). Direct queries never touch the read plane, so the defect is
   invisible without readers -- with readers >= 1 it must be caught,
   shrunk, and deterministically replayable. *)
let test_planted_stale_epoch_caught () =
  let config =
    { Runner.default_config with Runner.fault = Some `Stale_epoch; Runner.readers = 1 }
  in
  let clean_config = { Runner.default_config with Runner.readers = 1 } in
  let blind_config = { Runner.default_config with Runner.fault = Some `Stale_epoch } in
  let targets = Runner.select_targets ~variant:"worst-case" ~backend:"fm" () in
  let rec hunt seed =
    if seed > base_seed + 9 then
      Alcotest.fail "planted stale-epoch fault never caught in 10 churny streams"
    else
      match Runner.run_stream ~config ~targets ~profile:Opgen.churny ~seed ~ops:300 () with
      | Runner.Pass -> hunt (seed + 1)
      | Runner.Fail { failure = _; shrunk; trace } ->
        Alcotest.(check bool) "shrunk trace nonempty" true (shrunk <> []);
        Alcotest.(check bool) "shrinking did not grow the trace" true
          (List.length shrunk <= List.length trace);
        (match Runner.run_trace ~config ~targets shrunk with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "replayed minimal trace no longer fails under the fault");
        (match Runner.run_trace ~config:clean_config ~targets shrunk with
        | Ok () -> ()
        | Error f ->
          Alcotest.failf "minimal trace fails even without the fault: %s" f.Runner.f_message);
        (match Runner.run_trace ~config:blind_config ~targets shrunk with
        | Ok () -> ()
        | Error f ->
          Alcotest.failf
            "stale-epoch fault visible without readers -- it should only break the read plane: %s"
            f.Runner.f_message)
  in
  hunt base_seed

(* Sync (jobs = 0) and pooled (jobs = 2) instances fed the same op
   stream must answer every query identically -- directly, not only via
   the model. *)
let test_sync_vs_pooled_equivalence () =
  let ops = Opgen.generate ~seed:(base_seed + 77) ~ops:300 () in
  let mk jobs = DI.create ~variant:DI.Worst_case ~backend:DI.Fm ~sample:2 ~tau:4 ~jobs () in
  let a = mk 0 and b = mk 2 in
  Fun.protect ~finally:(fun () -> DI.close a; DI.close b) @@ fun () ->
  let cap f = try Ok (f ()) with Invalid_argument _ -> Error `Rejected in
  List.iteri
    (fun i op ->
      let ctx fmt = Printf.sprintf ("op %d: " ^^ fmt) i in
      (match op with
      | Trace.Insert s ->
        Alcotest.(check int) (ctx "insert id") (DI.insert a s) (DI.insert b s)
      | Trace.Delete id ->
        Alcotest.(check bool) (ctx "delete %d" id) (DI.delete a id) (DI.delete b id)
      | Trace.Search p ->
        Alcotest.(check bool) (ctx "search %S" p) true
          (cap (fun () -> DI.search a p) = cap (fun () -> DI.search b p))
      | Trace.Count p ->
        Alcotest.(check bool) (ctx "count %S" p) true
          (cap (fun () -> DI.count a p) = cap (fun () -> DI.count b p))
      | Trace.Extract { doc; off; len } ->
        Alcotest.(check (option string)) (ctx "extract %d %d %d" doc off len)
          (DI.extract a ~doc ~off ~len) (DI.extract b ~doc ~off ~len)
      | Trace.Mem id -> Alcotest.(check bool) (ctx "mem %d" id) (DI.mem a id) (DI.mem b id)
      | Trace.Drain ->
        DI.drain a;
        DI.drain b);
      Alcotest.(check int) (ctx "doc_count") (DI.doc_count a) (DI.doc_count b);
      Alcotest.(check int) (ctx "total_symbols") (DI.total_symbols a) (DI.total_symbols b))
    ops

(* --- relation-backend differential streams (Rel_check) --- *)

let rel_kinds = Rel_check.kinds_of_spec Rel_check.Both

let test_rel_rop_roundtrip () =
  let ops =
    [ Rel_check.Radd (3, 5); Rel_check.Rremove (0, 600); Rel_check.Rrelated (7, 7);
      Rel_check.Rsucc 12; Rel_check.Rpred 0; Rel_check.Rpairs ]
  in
  List.iter
    (fun op ->
      let line = Rel_check.rop_to_string op in
      Alcotest.(check bool) line true (Rel_check.parse_rop line = Ok op))
    ops;
  List.iter
    (fun bad -> Alcotest.(check bool) bad true (Result.is_error (Rel_check.parse_rop bad)))
    [ ""; "> 1"; "< x y"; "* 3"; "? 1 2" ];
  (* file round-trip with the rel= hint header *)
  let path = Filename.temp_file "dsdg-rel-trace" ".trace" in
  Rel_check.save ~spec:(Rel_check.One Dsdg_binrel.Rel_backend.K2) path ops;
  let hint = Trace.load_hint path in
  Alcotest.(check (option string)) "rel hint" (Some "k2") hint.Trace.h_rel;
  let reloaded = Rel_check.load path in
  Sys.remove path;
  Alcotest.(check bool) "ops round-trip" true (reloaded = ops)

(* The acceptance sweep: bounded relation streams fanned over BOTH
   backends, every answer byte-identical to the model (FUZZ_STREAMS
   of them -- 200 by default). *)
let test_rel_fuzz_streams () =
  for i = 0 to n_streams - 1 do
    let seed = base_seed + (1000 * i) in
    match Rel_check.run_stream ~kinds:rel_kinds ~seed ~ops:ops_per_stream () with
    | Rel_check.Pass -> ()
    | Rel_check.Fail { failure; shrunk; trace = _ } ->
      Alcotest.failf "%s" (Rel_check.report ~seed ~failure ~shrunk ())
  done

(* Plant the lost-remove fault and demand the relation pipeline works
   end to end: catch, shrink, save with hint, reload, replay to the
   same failure with the fault, replay clean without it. *)
let test_rel_planted_fault_caught () =
  let fault = Rel_check.Lost_remove in
  let rec hunt seed =
    if seed > base_seed + 9 then
      Alcotest.fail "planted rel-lost-remove fault never caught in 10 streams"
    else
      match Rel_check.run_stream ~fault ~kinds:rel_kinds ~seed ~ops:200 () with
      | Rel_check.Pass -> hunt (seed + 1)
      | Rel_check.Fail { failure = _; trace; shrunk } ->
        Alcotest.(check bool) "shrunk trace nonempty" true (shrunk <> []);
        Alcotest.(check bool) "shrinking did not grow the trace" true
          (List.length shrunk <= List.length trace);
        Alcotest.(check bool) "shrunk to a handful of ops" true (List.length shrunk <= 4);
        let path = Filename.temp_file "dsdg-rel-fault" ".trace" in
        Rel_check.save ~fault ~spec:Rel_check.Both path shrunk;
        let hint = Trace.load_hint path in
        Alcotest.(check (option string)) "rel hint survives" (Some "both") hint.Trace.h_rel;
        let reloaded = Rel_check.load path in
        Sys.remove path;
        Alcotest.(check bool) "minimal trace round-trips" true (reloaded = shrunk);
        (match Rel_check.run_ops ~fault ~kinds:rel_kinds reloaded with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "replayed minimal trace no longer fails under the fault");
        (match Rel_check.run_ops ~kinds:rel_kinds reloaded with
        | Ok () -> ()
        | Error f ->
          Alcotest.failf "minimal trace fails even without the fault: %s"
            f.Rel_check.rf_message)
  in
  hunt base_seed

let suite =
  [ ("trace round-trip", `Quick, test_trace_roundtrip);
    ("rel op round-trip", `Quick, test_rel_rop_roundtrip);
    ("opgen deterministic", `Quick, test_opgen_deterministic);
    ("opgen adversarial cases", `Quick, test_opgen_adversarial_cases);
    ("model semantics", `Quick, test_model_semantics);
    ("sync vs pooled equivalence", `Quick, test_sync_vs_pooled_equivalence);
    ("planted fault caught & shrunk", `Slow, test_planted_fault_caught);
    ("planted worker-crash caught & shrunk", `Slow, test_planted_worker_crash_caught);
    ("planted stale-epoch caught & shrunk", `Slow, test_planted_stale_epoch_caught);
    ("rel fuzz streams (both backends)", `Slow, test_rel_fuzz_streams);
    ("rel planted fault caught & shrunk", `Slow, test_rel_planted_fault_caught);
    ("fuzz t3 (loglog) streams", `Slow, test_fuzz_t3_streams);
    ("fuzz pooled smoke streams", `Slow, test_fuzz_pooled_smoke);
    ("fuzz reader smoke streams", `Slow, test_fuzz_readers_smoke);
    ("fuzz cross-target streams", `Slow, test_fuzz_cross_targets);
    ("fuzz spsi-substrate streams", `Slow, test_fuzz_spsi_streams);
    ("fuzz matrix streams", `Slow, test_fuzz_matrix) ]
