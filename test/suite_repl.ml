(* Replication tests: leader/follower convergence through a real
   cluster (K=1 and K=2), failover promotion sweeps, the planted-fault
   self-test of the divergence oracle, and the read-only replica
   engine's redirect discipline. *)

module Server = Dsdg_serve.Server
module Client = Dsdg_serve.Client
module Follower = Dsdg_serve.Follower
module Repl_check = Dsdg_serve.Repl_check
module Durable = Dsdg_store.Durable
module Kill_check = Dsdg_store.Kill_check
module Opgen = Dsdg_check.Opgen

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let with_dir prefix f =
  let d = tmp_dir prefix in
  Fun.protect ~finally:(fun () -> Kill_check.reset_dir d) (fun () -> f d)

let check_converged what (o : Repl_check.outcome) =
  Alcotest.(check bool) (what ^ ": points exercised") true (o.Repl_check.rc_points > 1);
  Alcotest.(check string) (what ^ ": no divergence") ""
    (String.concat "; "
       (List.map (fun (n, d) -> Printf.sprintf "after %d ops: %s" n d) o.Repl_check.rc_failures))

let check_survived what (o : Kill_check.outcome) =
  Alcotest.(check bool) (what ^ ": points exercised") true (o.Kill_check.kc_points > 1);
  Alcotest.(check string) (what ^ ": no lost acked write") ""
    (String.concat "; "
       (List.map
          (fun f -> Printf.sprintf "point %d: %s" f.Kill_check.kf_point f.Kill_check.kf_detail)
          o.Kill_check.kc_failures))

(* --- convergence: every quiesce point, replica = model --- *)

let test_convergence_single () =
  with_dir "dsdg-repl-conv1" (fun dir ->
      let ops = Opgen.generate ~seed:42 ~ops:60 () in
      check_converged "K=1"
        (Repl_check.convergence ~quiesce_every:16 ~checkpoint_every:24 ~dir ~ops ()))

let test_convergence_sharded () =
  with_dir "dsdg-repl-conv2" (fun dir ->
      let ops = Opgen.generate ~seed:43 ~ops:60 () in
      check_converged "K=2"
        (Repl_check.convergence ~shards:2 ~quiesce_every:16 ~dir ~ops ()))

(* A replica that falls behind the leader's checkpoint compaction is
   re-shipped from WAL archives (or re-seeded from a snapshot); either
   way it must still converge.  Aggressive checkpointing plus a churny
   stream exercises both paths. *)
let test_convergence_past_compaction () =
  with_dir "dsdg-repl-compact" (fun dir ->
      let ops = Opgen.generate ~profile:Opgen.churny ~seed:44 ~ops:80 () in
      check_converged "K=1 compacting"
        (Repl_check.convergence ~quiesce_every:40 ~checkpoint_every:8 ~dir ~ops ()))

(* --- the oracle's self-test: a planted replica fault MUST be caught --- *)

let test_planted_fault_caught () =
  with_dir "dsdg-repl-fault" (fun dir ->
      let ops = Opgen.generate ~profile:Opgen.churny ~seed:5 ~ops:600 () in
      let o =
        Repl_check.convergence ~fault:`Skip_top_clean ~quiesce_every:100
          ~dir ~ops ()
      in
      Alcotest.(check bool) "planted fault detected" true (o.Repl_check.rc_failures <> []);
      let detail = String.concat "; " (List.map snd o.Repl_check.rc_failures) in
      Alcotest.(check bool) "names the cleaning schedule" true
        (let has needle =
           let nl = String.length needle and dl = String.length detail in
           let rec go i = i + nl <= dl && (String.sub detail i nl = needle || go (i + 1)) in
           go 0
         in
         has "cleaning fell behind"))

(* --- failover: kill the leader, promote, every acked write survives --- *)

let test_failover_single () =
  with_dir "dsdg-repl-fo1" (fun dir ->
      let ops = Opgen.generate ~seed:45 ~ops:30 () in
      check_survived "K=1 failover" (Repl_check.failover_sweep ~stride:10 ~dir ~ops ()))

let test_failover_sharded () =
  with_dir "dsdg-repl-fo2" (fun dir ->
      let ops = Opgen.generate ~seed:46 ~ops:30 () in
      check_survived "K=2 failover"
        (Repl_check.failover_sweep ~shards:2 ~stride:10 ~dir ~ops ()))

(* --- read-only replica serving: queries local, writes redirected --- *)

let test_follower_serves_reads_redirects_writes () =
  with_dir "dsdg-repl-ro" (fun dir ->
      let leader_dir = Filename.concat dir "leader" in
      let replica_dir = Filename.concat dir "replica" in
      let lsock = Filename.concat dir "leader.sock" in
      let fsock = Filename.concat dir "replica.sock" in
      Unix.mkdir dir 0o755;
      let store, _ = Durable.open_ ~dir:leader_dir () in
      let leader = Server.start ~store (`Unix lsock) in
      Fun.protect
        ~finally:(fun () -> Server.stop leader)
        (fun () ->
          let lc = Client.connect (`Unix lsock) in
          let id = Client.insert lc "banana stand" in
          ignore (Client.insert lc "cabana");
          let fol = Follower.start ~leader:(`Unix lsock) ~dir:replica_dir () in
          let fsrv = Server.start_engine ~engine:(Follower.engine fol) (`Unix fsock) in
          Fun.protect
            ~finally:(fun () -> Server.stop fsrv)
            (fun () ->
              let fc = Client.connect (`Unix fsock) in
              (* wait for the replica to catch up through the wire *)
              let deadline = Unix.gettimeofday () +. 10. in
              while
                Client.count fc "ana" < 3
                && (Unix.gettimeofday () < deadline || Alcotest.fail "replica never caught up")
              do
                Thread.delay 0.02
              done;
              (* reads answer locally, identically to the leader *)
              Alcotest.(check bool) "search matches leader" true
                (Client.search fc "ana" = Client.search lc "ana");
              Alcotest.(check bool) "extract" true
                (Client.extract fc ~doc:id ~off:7 ~len:5 = Some "stand");
              (* stats surface the replication scope *)
              let stats = Client.stats fc in
              Alcotest.(check bool) "stats carry connected flag" true
                (List.mem_assoc "connected" stats);
              (* mutations are refused with a redirect naming the leader *)
              (match Client.insert fc "must be refused" with
              | _ -> Alcotest.fail "follower accepted a write"
              | exception Client.Server_error reason ->
                Alcotest.(check bool)
                  (Printf.sprintf "redirect names the leader (%s)" reason)
                  true
                  (let has needle =
                     let nl = String.length needle and dl = String.length reason in
                     let rec go i = i + nl <= dl && (String.sub reason i nl = needle || go (i + 1)) in
                     go 0
                   in
                   has lsock && has "read-only"));
              (* the refused write never reached either side *)
              Alcotest.(check int) "leader unaffected" 3 (Client.count lc "ana");
              Client.close fc;
              Client.close lc)))

let suite =
  [ Alcotest.test_case "convergence: K=1 cluster, every quiesce point" `Quick
      test_convergence_single;
    Alcotest.test_case "convergence: K=2 cluster, migrate shipping" `Quick
      test_convergence_sharded;
    Alcotest.test_case "convergence: replica outruns compaction (archives/snapshot)" `Quick
      test_convergence_past_compaction;
    Alcotest.test_case "planted replica fault is caught (oracle self-test)" `Slow
      test_planted_fault_caught;
    Alcotest.test_case "failover: K=1 promoted follower keeps acked writes" `Quick
      test_failover_single;
    Alcotest.test_case "failover: K=2 promoted follower keeps acked writes" `Quick
      test_failover_sharded;
    Alcotest.test_case "read-only replica: local reads, redirect on write" `Quick
      test_follower_serves_reads_redirects_writes ]
