(* Tests for Transformation 3 (Appendix A.4): the doubling schedule --
   sub-collection capacities 2^j * (2n / log^2 n), so the number of
   live sub-collections stays O(log log n) while each merge moves a
   document at most O(log log n) times.

   The structural oracle here is the schedule's census bound: at every
   point of an adversarial insert stream, the number of sub-collections
   reported by [census] must stay within the doubling slot budget
   r(nf) = ceil(2 * log2 log2 nf) + 1 -- the measured counterpart of
   the paper's O(log log n) claim, checked the same way
   suite_transform2 pins T2's scheduling invariants. *)

open Dsdg_core

module T1 = Transform1.Make (Fm_static)

let check = Alcotest.(check int)
let naive_search = Dsdg_check.Model.occurrences

let rand_doc st max_len =
  let n = Random.State.int st max_len in
  String.init n (fun _ -> Char.chr (97 + Random.State.int st 3))

(* The slot budget of the doubling schedule at nf live symbols,
   recomputed here from the paper formula so the test does not trust
   the implementation's own arithmetic. *)
let slot_budget nf =
  let log2 x = log x /. log 2. in
  let lg = max 2. (log2 (float_of_int (max nf 256))) in
  max 2 (int_of_float (ceil (2. *. log2 lg)) + 1)

(* Sub-collections in the census: every entry except the C0 buffer. *)
let sub_collections t =
  List.length (List.filter (fun (name, _) -> name <> "C0") (T1.census t))

let test_schedule_name () =
  let t = T1.create ~schedule:(Transform1.doubling ()) ~sample:2 ~tau:4 () in
  Alcotest.(check string) "schedule_name" "doubling" (T1.schedule_name t)

(* Monotone insert stream: the census must respect the O(log log n)
   slot budget at every step, not just at the end. *)
let test_census_bound_throughout () =
  let st = Random.State.make [| 301 |] in
  let t = T1.create ~schedule:(Transform1.doubling ()) ~sample:2 ~tau:4 () in
  let worst = ref 0 in
  for i = 1 to 1200 do
    ignore (T1.insert t (rand_doc st 60));
    if i mod 25 = 0 then begin
      let subs = sub_collections t in
      let budget = slot_budget (T1.nf t) in
      worst := max !worst subs;
      Alcotest.(check bool)
        (Printf.sprintf "step %d: %d sub-collections within budget %d" i subs budget)
        true (subs <= budget)
    end
  done;
  (* the budget must actually have been approached, or the oracle is
     vacuous *)
  Alcotest.(check bool) "census was non-trivial" true (!worst >= 2);
  (* O(log log n) in absolute terms: ~36k symbols fit in 2*log2 log2 n
     + 1 <= 9 slots, far below the log2 n ~ 15 a plain doubling-without
     -relabeling schedule would need *)
  Alcotest.(check bool) "budget is loglog-sized" true (slot_budget (T1.nf t) <= 9)

(* Level capacities must actually double (modulo the 64-symbol floor):
   the defining property of the schedule. *)
let test_level_capacity_doubles () =
  let t = T1.create ~schedule:(Transform1.doubling ()) ~sample:2 ~tau:4 () in
  for i = 0 to 399 do
    ignore (T1.insert t (Printf.sprintf "capacity probe %d padding padding" i))
  done;
  let budget = slot_budget (T1.nf t) in
  for j = 1 to budget - 1 do
    let c = T1.level_capacity t j and c' = T1.level_capacity t (j + 1) in
    if c > 64 then
      Alcotest.(check bool)
        (Printf.sprintf "capacity(%d)=%d doubles to capacity(%d)=%d" j c (j + 1) c')
        true
        (c' >= 2 * c - 2 && c' <= (2 * c) + 2)
  done

(* Churn against the naive model, suite_transform2 style: the doubling
   schedule must not change a single answer. *)
let test_churn_vs_model () =
  let st = Random.State.make [| 302 |] in
  let t = T1.create ~schedule:(Transform1.doubling ()) ~sample:2 ~tau:4 () in
  let model = Hashtbl.create 64 in
  let patterns = [ "a"; "ab"; "ba"; "ca"; "bb" ] in
  let verify step =
    let live = Hashtbl.fold (fun d s acc -> (d, s) :: acc) model [] in
    List.iter
      (fun p ->
        let expected = naive_search live p in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "step %d search %s" step p)
          expected (T1.matches t p);
        check (Printf.sprintf "step %d count %s" step p) (List.length expected) (T1.count t p))
      patterns
  in
  for step = 1 to 220 do
    let roll = Random.State.float st 1.0 in
    if roll < 0.6 || Hashtbl.length model = 0 then begin
      let text = rand_doc st 40 in
      let id = T1.insert t text in
      Hashtbl.replace model id text
    end
    else begin
      let ids = Hashtbl.fold (fun d _ acc -> d :: acc) model [] in
      let id = List.nth ids (Random.State.int st (List.length ids)) in
      Alcotest.(check bool) (Printf.sprintf "delete %d" id) true (T1.delete t id);
      Hashtbl.remove model id
    end;
    if step mod 11 = 0 then verify step
  done;
  verify 220;
  Hashtbl.iter
    (fun id text ->
      Alcotest.(check (option string)) (Printf.sprintf "extract %d" id) (Some text)
        (T1.extract t ~doc:id ~off:0 ~len:(String.length text)))
    model;
  check "doc_count" (Hashtbl.length model) (T1.doc_count t)

(* Geometric and doubling schedules fed the same stream must answer
   every query identically -- the schedule is an amortization choice,
   never a semantic one. *)
let test_doubling_vs_geometric_equivalence () =
  let mk schedule = T1.create ~schedule ~sample:2 ~tau:4 () in
  let a = mk (Transform1.geometric ()) and b = mk (Transform1.doubling ()) in
  let ops = Dsdg_check.Opgen.generate ~seed:303 ~ops:250 () in
  let module Trace = Dsdg_check.Trace in
  let cap f = try Ok (f ()) with Invalid_argument _ -> Error `Rejected in
  List.iteri
    (fun i op ->
      let ctx fmt = Printf.sprintf ("op %d: " ^^ fmt) i in
      (match op with
      | Trace.Insert s -> check (ctx "insert id") (T1.insert a s) (T1.insert b s)
      | Trace.Delete id ->
        Alcotest.(check bool) (ctx "delete %d" id) (T1.delete a id) (T1.delete b id)
      | Trace.Search p ->
        Alcotest.(check bool) (ctx "search %S" p) true
          (cap (fun () -> T1.matches a p) = cap (fun () -> T1.matches b p))
      | Trace.Count p ->
        Alcotest.(check bool) (ctx "count %S" p) true
          (cap (fun () -> T1.count a p) = cap (fun () -> T1.count b p))
      | Trace.Extract { doc; off; len } ->
        Alcotest.(check (option string)) (ctx "extract %d %d %d" doc off len)
          (T1.extract a ~doc ~off ~len) (T1.extract b ~doc ~off ~len)
      | Trace.Mem id -> Alcotest.(check bool) (ctx "mem %d" id) (T1.mem a id) (T1.mem b id)
      | Trace.Drain -> ());
      check (ctx "doc_count") (T1.doc_count a) (T1.doc_count b);
      check (ctx "total_symbols") (T1.total_symbols a) (T1.total_symbols b))
    ops

(* Merges must move a document O(log log n) times, not O(log n): the
   rebuilt-symbol total under doubling is bounded by nf * budget, the
   per-symbol merge count the schedule exists to deliver. *)
let test_rebuild_work_bounded () =
  let st = Random.State.make [| 304 |] in
  let t = T1.create ~schedule:(Transform1.doubling ()) ~sample:2 ~tau:4 () in
  for _ = 1 to 1500 do
    ignore (T1.insert t (rand_doc st 50))
  done;
  let s = T1.stats t in
  let nf = T1.nf t in
  let bound = nf * (slot_budget nf + 2) in
  Alcotest.(check bool)
    (Printf.sprintf "rebuilt %d <= %d (nf=%d x budget)" s.Transform1.symbols_rebuilt bound nf)
    true
    (s.Transform1.symbols_rebuilt <= bound)

let suite =
  [ ("schedule name", `Quick, test_schedule_name);
    ("census within the loglog slot budget throughout", `Quick, test_census_bound_throughout);
    ("level capacities double", `Quick, test_level_capacity_doubles);
    ("churn agrees with the model", `Quick, test_churn_vs_model);
    ("doubling = geometric on every answer", `Quick, test_doubling_vs_geometric_equivalence);
    ("rebuild work bounded by nf * loglog", `Quick, test_rebuild_work_bounded) ]
