(* Tests for dsdg_wavelet: balanced and Huffman-shaped wavelet trees. *)

open Dsdg_wavelet

let check = Alcotest.(check int)

(* Naive references over int arrays. *)
let naive_rank a c i =
  let acc = ref 0 in
  Array.iteri (fun j x -> if j < i && x = c then incr acc) a;
  !acc

let naive_select a c k =
  let seen = ref 0 and res = ref (-1) in
  Array.iteri (fun j x -> if x = c && !res < 0 then begin
      if !seen = k then res := j;
      incr seen
    end) a;
  if !res < 0 then raise Not_found else !res

(* Run the same battery against any sequence structure via first-class
   functions, so both wavelet variants share the checks. *)
let battery name ~access ~rank ~select ~len ~sigma (a : int array) =
  check (name ^ " len") (Array.length a) len;
  Array.iteri (fun i x -> check (Printf.sprintf "%s access %d" name i) x (access i)) a;
  for c = 0 to sigma - 1 do
    for i = 0 to Array.length a do
      check (Printf.sprintf "%s rank c=%d i=%d" name c i) (naive_rank a c i) (rank c i)
    done;
    let total = naive_rank a c (Array.length a) in
    for k = 0 to total - 1 do
      check (Printf.sprintf "%s select c=%d k=%d" name c k) (naive_select a c k) (select c k)
    done;
    Alcotest.check_raises (Printf.sprintf "%s select beyond c=%d" name c) Not_found (fun () ->
        ignore (select c total))
  done

let battery_wt a sigma =
  let wt = Wavelet_tree.build ~sigma a in
  battery "wt" ~access:(Wavelet_tree.access wt) ~rank:(Wavelet_tree.rank wt)
    ~select:(Wavelet_tree.select wt) ~len:(Wavelet_tree.length wt) ~sigma a

let battery_hwt a sigma =
  let wt = Huffman_wavelet.build ~sigma a in
  battery "hwt" ~access:(Huffman_wavelet.access wt) ~rank:(Huffman_wavelet.rank wt)
    ~select:(Huffman_wavelet.select wt) ~len:(Huffman_wavelet.length wt) ~sigma a

let test_wt_small () = battery_wt [| 3; 1; 4; 1; 5; 2; 6; 5; 3; 5 |] 8
let test_hwt_small () = battery_hwt [| 3; 1; 4; 1; 5; 2; 6; 5; 3; 5 |] 8
let test_wt_unary () = battery_wt (Array.make 50 0) 1
let test_hwt_unary () = battery_hwt (Array.make 50 0) 3
let test_wt_binary () = battery_wt [| 0; 1; 1; 0; 1; 0; 0; 0; 1 |] 2
let test_hwt_binary () = battery_hwt [| 0; 1; 1; 0; 1; 0; 0; 0; 1 |] 2

let test_wt_skewed () =
  (* heavily skewed distribution; exercises Huffman code depths *)
  let a = Array.init 300 (fun i -> if i mod 17 = 0 then i mod 5 else 0) in
  battery_wt a 5;
  battery_hwt a 5

let test_hwt_missing_symbols () =
  (* alphabet has holes: symbols 1 and 3 never occur *)
  let a = [| 0; 2; 4; 2; 0; 4; 4 |] in
  let wt = Huffman_wavelet.build ~sigma:5 a in
  check "rank missing" 0 (Huffman_wavelet.rank wt 1 7);
  check "count missing" 0 (Huffman_wavelet.count wt 3);
  Alcotest.check_raises "select missing" Not_found (fun () ->
      ignore (Huffman_wavelet.select wt 1 0));
  battery_hwt a 5

let test_hwt_compression () =
  (* Huffman-shaped tree must use close to n*H0 bits, far less than the
     balanced tree, on a skewed sequence over a large alphabet *)
  let st = Random.State.make [| 11 |] in
  let a =
    Array.init 20000 (fun _ ->
        if Random.State.float st 1.0 < 0.9 then 0 else 1 + Random.State.int st 255)
  in
  let bal = Wavelet_tree.build ~sigma:256 a in
  let huf = Huffman_wavelet.build ~sigma:256 a in
  let sb = Wavelet_tree.space_bits bal and sh = Huffman_wavelet.space_bits huf in
  Alcotest.(check bool)
    (Printf.sprintf "huffman (%d bits) < 75%% of balanced (%d bits)" sh sb)
    true
    (float_of_int sh < 0.75 *. float_of_int sb)

let test_empty () =
  let wt = Huffman_wavelet.build ~sigma:4 [||] in
  check "len" 0 (Huffman_wavelet.length wt);
  check "rank" 0 (Huffman_wavelet.rank wt 2 0)

let gen_seq = QCheck.(pair (int_range 1 12) (list_of_size Gen.(0 -- 150) (int_bound 11)))

let prop_wt =
  QCheck.Test.make ~name:"balanced wavelet agrees with naive" ~count:150 gen_seq
    (fun (sigma, l) ->
      let a = Array.of_list (List.map (fun x -> x mod sigma) l) in
      let wt = Wavelet_tree.build ~sigma a in
      let ok = ref (Wavelet_tree.to_array wt = a) in
      for c = 0 to sigma - 1 do
        for i = 0 to Array.length a do
          if Wavelet_tree.rank wt c i <> naive_rank a c i then ok := false
        done
      done;
      !ok)

let prop_hwt =
  QCheck.Test.make ~name:"huffman wavelet agrees with naive" ~count:150 gen_seq
    (fun (sigma, l) ->
      let a = Array.of_list (List.map (fun x -> x mod sigma) l) in
      let wt = Huffman_wavelet.build ~sigma a in
      let ok = ref (Huffman_wavelet.to_array wt = a) in
      for c = 0 to sigma - 1 do
        for i = 0 to Array.length a do
          if Huffman_wavelet.rank wt c i <> naive_rank a c i then ok := false
        done
      done;
      !ok)

let prop_select_rank_inverse =
  QCheck.Test.make ~name:"wavelet: rank (select k) = k" ~count:150 gen_seq
    (fun (sigma, l) ->
      let a = Array.of_list (List.map (fun x -> x mod sigma) l) in
      let wt = Wavelet_tree.build ~sigma a in
      let ok = ref true in
      for c = 0 to sigma - 1 do
        let total = Wavelet_tree.count wt c in
        for k = 0 to total - 1 do
          let p = Wavelet_tree.select wt c k in
          if Wavelet_tree.rank wt c p <> k then ok := false;
          if Wavelet_tree.access wt p <> c then ok := false
        done
      done;
      !ok)

let prop_huffman_codes_prefix_free =
  QCheck.Test.make ~name:"huffman codes are prefix-free" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (int_range 1 100))
    (fun freqs_l ->
      let freqs = Array.of_list freqs_l in
      let sigma = Array.length freqs in
      let codes = Huffman.codes ~sigma freqs in
      let ok = ref true in
      for a = 0 to sigma - 1 do
        for b = 0 to sigma - 1 do
          if a <> b then begin
            let ca = codes.(a) and cb = codes.(b) in
            if ca.Huffman.len > 0 && cb.Huffman.len > 0 && ca.Huffman.len <= cb.Huffman.len then begin
              let prefix = cb.Huffman.bits lsr (cb.Huffman.len - ca.Huffman.len) in
              if prefix = ca.Huffman.bits then ok := false
            end
          end
        done
      done;
      !ok)

let prop_huffman_optimal_vs_entropy =
  QCheck.Test.make ~name:"huffman average length within [H0, H0+1)" ~count:100
    QCheck.(list_of_size Gen.(2 -- 20) (int_range 1 500))
    (fun freqs_l ->
      let freqs = Array.of_list freqs_l in
      let sigma = Array.length freqs in
      let codes = Huffman.codes ~sigma freqs in
      let avg = Huffman.average_length freqs codes in
      let total = Array.fold_left ( + ) 0 freqs in
      let h0 =
        Array.fold_left
          (fun acc f ->
            if f = 0 then acc
            else
              let p = float_of_int f /. float_of_int total in
              acc -. (p *. (log p /. log 2.)))
          0.0 freqs
      in
      avg >= h0 -. 1e-9 && avg < h0 +. 1.0 +. 1e-9)

let battery_ap a sigma =
  let ap = Alphabet_partition.build ~sigma a in
  battery "ap" ~access:(Alphabet_partition.access ap) ~rank:(Alphabet_partition.rank ap)
    ~select:(Alphabet_partition.select ap) ~len:(Alphabet_partition.length ap) ~sigma a

let test_ap_small () = battery_ap [| 3; 1; 4; 1; 5; 2; 6; 5; 3; 5 |] 8
let test_ap_skewed () =
  (* wildly different frequencies to populate several groups *)
  let a = Array.init 500 (fun i -> if i mod 50 = 0 then 1 + (i mod 7) else 0) in
  battery_ap a 8

let test_ap_missing_symbols () =
  let a = [| 0; 2; 4; 2; 0; 4; 4 |] in
  let ap = Alphabet_partition.build ~sigma:6 a in
  check "rank missing" 0 (Alphabet_partition.rank ap 1 7);
  check "count missing" 0 (Alphabet_partition.count ap 5);
  Alcotest.check_raises "select missing" Not_found (fun () ->
      ignore (Alphabet_partition.select ap 1 0));
  battery_ap a 6

let prop_ap =
  QCheck.Test.make ~name:"alphabet partition agrees with naive" ~count:150 gen_seq
    (fun (sigma, l) ->
      let a = Array.of_list (List.map (fun x -> x mod sigma) l) in
      let ap = Alphabet_partition.build ~sigma a in
      let ok = ref (Alphabet_partition.to_array ap = a) in
      for c = 0 to sigma - 1 do
        for i = 0 to Array.length a do
          if Alphabet_partition.rank ap c i <> naive_rank a c i then ok := false
        done
      done;
      !ok)

let prop_ap_matches_hwt =
  QCheck.Test.make ~name:"alphabet partition agrees with huffman wavelet" ~count:100 gen_seq
    (fun (sigma, l) ->
      let a = Array.of_list (List.map (fun x -> x mod sigma) l) in
      let ap = Alphabet_partition.build ~sigma a in
      let hw = Huffman_wavelet.build ~sigma a in
      let ok = ref true in
      for c = 0 to sigma - 1 do
        if Alphabet_partition.count ap c <> Huffman_wavelet.count hw c then ok := false;
        for i = 0 to Array.length a do
          if Alphabet_partition.rank ap c i <> Huffman_wavelet.rank hw c i then ok := false
        done
      done;
      !ok)

let qsuite =
  List.map Qc.to_alcotest
    [ prop_wt; prop_hwt; prop_ap; prop_ap_matches_hwt; prop_select_rank_inverse;
      prop_huffman_codes_prefix_free; prop_huffman_optimal_vs_entropy ]

let suite =
  [ ("wt small", `Quick, test_wt_small);
    ("hwt small", `Quick, test_hwt_small);
    ("wt unary alphabet", `Quick, test_wt_unary);
    ("hwt unary alphabet", `Quick, test_hwt_unary);
    ("wt binary", `Quick, test_wt_binary);
    ("hwt binary", `Quick, test_hwt_binary);
    ("wt/hwt skewed", `Quick, test_wt_skewed);
    ("hwt missing symbols", `Quick, test_hwt_missing_symbols);
    ("hwt compression", `Quick, test_hwt_compression);
    ("hwt empty", `Quick, test_empty);
    ("ap small", `Quick, test_ap_small);
    ("ap skewed", `Quick, test_ap_skewed);
    ("ap missing symbols", `Quick, test_ap_missing_symbols) ]
  @ qsuite
