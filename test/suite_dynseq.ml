(* Tests for dsdg_dynseq: dynamic bit vector, dynamic wavelet tree and
   the baseline dynamic FM-index, all against naive models. *)

open Dsdg_dynseq

let check = Alcotest.(check int)

(* --- Dyn_bitvec vs a naive bool list --- *)

let test_dbv_push_and_get () =
  let bv = Dyn_bitvec.create () in
  for i = 0 to 999 do
    Dyn_bitvec.push_back bv (i mod 3 = 0)
  done;
  check "len" 1000 (Dyn_bitvec.len bv);
  check "ones" 334 (Dyn_bitvec.ones bv);
  for i = 0 to 999 do
    Alcotest.(check bool) (Printf.sprintf "get %d" i) (i mod 3 = 0) (Dyn_bitvec.get bv i)
  done

let test_dbv_insert_middle () =
  let bv = Dyn_bitvec.create () in
  (* build 0,1,0,1,... by always inserting at position 1 *)
  Dyn_bitvec.push_back bv false;
  for _ = 1 to 100 do
    Dyn_bitvec.insert bv 1 true;
    Dyn_bitvec.insert bv 1 false
  done;
  check "len" 201 (Dyn_bitvec.len bv);
  check "ones" 100 (Dyn_bitvec.ones bv)

let test_dbv_delete () =
  let bv = Dyn_bitvec.create () in
  for i = 0 to 499 do
    Dyn_bitvec.push_back bv (i mod 2 = 0)
  done;
  (* delete all odd positions (the false bits), from the back *)
  for i = 249 downto 0 do
    Dyn_bitvec.delete bv ((2 * i) + 1)
  done;
  check "len" 250 (Dyn_bitvec.len bv);
  check "ones" 250 (Dyn_bitvec.ones bv)

let dbv_model_ops st n =
  let bv = Dyn_bitvec.create () in
  let model = ref [] in
  let insert_at l i b =
    let rec go l i = match (l, i) with xs, 0 -> b :: xs | x :: xs, i -> x :: go xs (i - 1) | [], _ -> [ b ] in
    go l i
  in
  let delete_at l i =
    let rec go l i = match (l, i) with _ :: xs, 0 -> xs | x :: xs, i -> x :: go xs (i - 1) | [], _ -> [] in
    go l i
  in
  for _ = 1 to n do
    let len = List.length !model in
    if Random.State.float st 1.0 < 0.7 || len = 0 then begin
      let pos = Random.State.int st (len + 1) in
      let b = Random.State.bool st in
      Dyn_bitvec.insert bv pos b;
      model := insert_at !model pos b
    end
    else begin
      let pos = Random.State.int st len in
      Dyn_bitvec.delete bv pos;
      model := delete_at !model pos
    end
  done;
  (bv, !model)

let prop_dbv_matches_model =
  QCheck.Test.make ~name:"dyn_bitvec matches naive model under churn" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 50 600))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 13 |] in
      let bv, model = dbv_model_ops st ops in
      let ok = ref (Dyn_bitvec.to_bools bv = model) in
      (* rank at every position *)
      let acc = ref 0 in
      List.iteri
        (fun i b ->
          if Dyn_bitvec.rank1 bv i <> !acc then ok := false;
          if b then incr acc)
        model;
      (* select of every one and zero *)
      let ones = List.filteri (fun _ b -> b) model in
      ignore ones;
      let kth_pos which k =
        let rec go i seen = function
          | [] -> raise Not_found
          | b :: rest -> if b = which then (if seen = k then i else go (i + 1) (seen + 1) rest) else go (i + 1) seen rest
        in
        go 0 0 model
      in
      (try
         for k = 0 to Dyn_bitvec.ones bv - 1 do
           if Dyn_bitvec.select1 bv k <> kth_pos true k then ok := false
         done;
         for k = 0 to Dyn_bitvec.zeros bv - 1 do
           if Dyn_bitvec.select0 bv k <> kth_pos false k then ok := false
         done
       with Not_found -> ok := false);
      !ok)

(* Out-of-range select raises Invalid_argument, matching
   insert/delete/rank -- including on an empty vector. *)
let test_dbv_select_out_of_range () =
  let bv = Dyn_bitvec.create () in
  Alcotest.check_raises "select1 on empty" (Invalid_argument "Dyn_bitvec.select1") (fun () ->
      ignore (Dyn_bitvec.select1 bv 0));
  Alcotest.check_raises "select0 on empty" (Invalid_argument "Dyn_bitvec.select0") (fun () ->
      ignore (Dyn_bitvec.select0 bv 0));
  List.iter (Dyn_bitvec.push_back bv) [ true; false; true; true; false ];
  check "select1 k=0" 0 (Dyn_bitvec.select1 bv 0);
  check "select1 last" 3 (Dyn_bitvec.select1 bv 2);
  check "select0 k=0" 1 (Dyn_bitvec.select0 bv 0);
  check "select0 last" 4 (Dyn_bitvec.select0 bv 1);
  Alcotest.check_raises "select1 k=ones" (Invalid_argument "Dyn_bitvec.select1") (fun () ->
      ignore (Dyn_bitvec.select1 bv 3));
  Alcotest.check_raises "select0 k=zeros" (Invalid_argument "Dyn_bitvec.select0") (fun () ->
      ignore (Dyn_bitvec.select0 bv 2));
  Alcotest.check_raises "select1 k<0" (Invalid_argument "Dyn_bitvec.select1") (fun () ->
      ignore (Dyn_bitvec.select1 bv (-1)))

(* --- Dyn_wavelet vs naive int list --- *)

let prop_dwt_matches_model =
  QCheck.Test.make ~name:"dyn_wavelet matches naive model under churn" ~count:50
    QCheck.(triple (int_bound 10000) (int_range 2 17) (int_range 30 300))
    (fun (seed, sigma, ops) ->
      let st = Random.State.make [| seed; 29 |] in
      let wt = Dyn_wavelet.create ~sigma () in
      let model = ref [||] in
      for _ = 1 to ops do
        let len = Array.length !model in
        if Random.State.float st 1.0 < 0.7 || len = 0 then begin
          let pos = Random.State.int st (len + 1) in
          let sym = Random.State.int st sigma in
          Dyn_wavelet.insert wt pos sym;
          model := Array.concat [ Array.sub !model 0 pos; [| sym |]; Array.sub !model pos (len - pos) ]
        end
        else begin
          let pos = Random.State.int st len in
          Dyn_wavelet.delete wt pos;
          model := Array.concat [ Array.sub !model 0 pos; Array.sub !model (pos + 1) (len - pos - 1) ]
        end
      done;
      let a = !model in
      let ok = ref (Dyn_wavelet.to_array wt = a) in
      for c = 0 to sigma - 1 do
        let cnt = ref 0 in
        Array.iteri
          (fun i x ->
            if Dyn_wavelet.rank wt c i <> !cnt then ok := false;
            if x = c then incr cnt)
          a;
        if Dyn_wavelet.rank wt c (Array.length a) <> !cnt then ok := false;
        let seen = ref 0 in
        Array.iteri
          (fun i x ->
            if x = c then begin
              if Dyn_wavelet.select wt c !seen <> i then ok := false;
              incr seen
            end)
          a
      done;
      !ok)

(* --- Dyn_fm vs naive search --- *)

let naive_count docs p =
  let pl = String.length p in
  Hashtbl.fold
    (fun _ str acc ->
      let c = ref 0 in
      for off = 0 to String.length str - pl do
        if String.sub str off pl = p then incr c
      done;
      acc + !c)
    docs 0

let naive_matches docs p =
  let pl = String.length p in
  let res = ref [] in
  Hashtbl.iter
    (fun d str ->
      for off = 0 to String.length str - pl do
        if String.sub str off pl = p then res := (d, off) :: !res
      done)
    docs;
  List.sort compare !res

let test_dynfm_basic () =
  let fm = Dyn_fm.create () in
  Dyn_fm.insert fm ~doc:0 "banana";
  Dyn_fm.insert fm ~doc:1 "bandana";
  Dyn_fm.insert fm ~doc:2 "ananas";
  check "count ana" 5 (Dyn_fm.count fm "ana");
  check "count ban" 2 (Dyn_fm.count fm "ban");
  check "count zz" 0 (Dyn_fm.count fm "zz");
  let docs = Hashtbl.create 4 in
  Hashtbl.replace docs 0 "banana";
  Hashtbl.replace docs 1 "bandana";
  Hashtbl.replace docs 2 "ananas";
  Alcotest.(check (list (pair int int))) "locate ana" (naive_matches docs "ana") (Dyn_fm.search fm "ana")

let test_dynfm_delete () =
  let fm = Dyn_fm.create () in
  Dyn_fm.insert fm ~doc:0 "banana";
  Dyn_fm.insert fm ~doc:1 "bandana";
  Alcotest.(check bool) "delete" true (Dyn_fm.delete fm 0);
  check "count ana after" 1 (Dyn_fm.count fm "ana");
  check "count ban after" 1 (Dyn_fm.count fm "ban");
  Alcotest.(check bool) "delete gone" false (Dyn_fm.delete fm 0);
  Alcotest.(check bool) "delete other" true (Dyn_fm.delete fm 1);
  check "empty" 0 (Dyn_fm.total_symbols fm)

let test_dynfm_empty_doc () =
  let fm = Dyn_fm.create () in
  Dyn_fm.insert fm ~doc:7 "";
  check "one symbol" 1 (Dyn_fm.total_symbols fm);
  Alcotest.(check bool) "delete empty doc" true (Dyn_fm.delete fm 7);
  check "zero" 0 (Dyn_fm.total_symbols fm)

let prop_dynfm_matches_naive =
  QCheck.Test.make ~name:"dyn_fm count+locate match naive under churn" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 10 40))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 31 |] in
      let fm = Dyn_fm.create () in
      let docs = Hashtbl.create 16 in
      let next = ref 0 in
      for _ = 1 to ops do
        if Random.State.float st 1.0 < 0.7 || Hashtbl.length docs = 0 then begin
          let len = Random.State.int st 25 in
          let text = String.init len (fun _ -> Char.chr (97 + Random.State.int st 3)) in
          Dyn_fm.insert fm ~doc:!next text;
          Hashtbl.replace docs !next text;
          incr next
        end
        else begin
          let ids = Hashtbl.fold (fun d _ acc -> d :: acc) docs [] in
          let id = List.nth ids (Random.State.int st (List.length ids)) in
          ignore (Dyn_fm.delete fm id);
          Hashtbl.remove docs id
        end
      done;
      List.for_all
        (fun p ->
          Dyn_fm.count fm p = naive_count docs p && Dyn_fm.search fm p = naive_matches docs p)
        [ "a"; "b"; "ab"; "ba"; "ca"; "abc" ])

(* --- split_leaf blit paths (Dyn_bitvec.split_chunk_for_tests) ---

   Production only ever splits a 497-bit chunk (midpoint 248, word
   aligned); the hook lets us drive the word-level blit + shift-and-
   stitch rewrite across aligned and unaligned cut points. *)

let test_split_chunk_boundaries () =
  List.iter
    (fun n ->
      let bits = Array.init n (fun i -> i * 7 mod 3 = 0 || i mod 11 = 5) in
      let l, r = Dyn_bitvec.split_chunk_for_tests bits in
      let half = n / 2 in
      check (Printf.sprintf "n=%d left len" n) half (Array.length l);
      check (Printf.sprintf "n=%d right len" n) (n - half) (Array.length r);
      Alcotest.(check bool)
        (Printf.sprintf "n=%d contents" n)
        true
        (Array.to_list l @ Array.to_list r = Array.to_list bits))
    (* odd n => unaligned cut (half mod 62 <> 0); 124/496 => aligned *)
    [ 1; 2; 61; 62; 63; 123; 124; 125; 495; 496; 497; 992 ]

(* --- Dyn_fm on the SPSI substrate: same battery, other backend --- *)

let test_dynfm_spsi_backend () =
  let fm = Dyn_fm.create ~backend:Seq_backend.Spsi () in
  Alcotest.(check bool) "backend" true (Dyn_fm.backend fm = Seq_backend.Spsi);
  Dyn_fm.insert fm ~doc:0 "banana";
  Dyn_fm.insert fm ~doc:1 "bandana";
  Dyn_fm.insert fm ~doc:2 "ananas";
  check "count ana" 5 (Dyn_fm.count fm "ana");
  let docs = Hashtbl.create 4 in
  Hashtbl.replace docs 0 "banana";
  Hashtbl.replace docs 1 "bandana";
  Hashtbl.replace docs 2 "ananas";
  Alcotest.(check (list (pair int int)))
    "locate ana" (naive_matches docs "ana") (Dyn_fm.search fm "ana");
  Alcotest.(check bool) "delete" true (Dyn_fm.delete fm 1);
  check "count ana after" 4 (Dyn_fm.count fm "ana");
  check "count and after" 0 (Dyn_fm.count fm "and")

(* --- Dyn_fm sentinel bookkeeping under heavy churn ---

   Regression for the quadratic list-based sentinel order (append =
   List.@, row lookup = index_of, locate = List.nth, remove =
   List.filter -- each O(ndocs)).  5000 live docs * O(ndocs) walks took
   minutes; with the indexable slot array + liveness bitvector the whole
   cycle is seconds even in CI.  Correctness is asserted throughout:
   counts during the build-up, locate at full size, emptiness at the
   end. *)

let test_dynfm_churn_5k () =
  let fm = Dyn_fm.create () in
  let n = 5000 in
  for d = 0 to n - 1 do
    Dyn_fm.insert fm ~doc:d (if d mod 3 = 0 then "ab" else "ba")
  done;
  check "docs" n (Dyn_fm.doc_count fm);
  check "count ab at peak" (((n + 2) / 3) + 0) (Dyn_fm.count fm "ab");
  (* delete the even docs, reinsert a batch, then drain everything --
     sentinel slots keep appending while liveness toggles *)
  for d = 0 to n - 1 do
    if d mod 2 = 0 then ignore (Dyn_fm.delete fm d)
  done;
  check "docs after evens" (n / 2) (Dyn_fm.doc_count fm);
  for d = n to n + 99 do
    Dyn_fm.insert fm ~doc:d "aa"
  done;
  check "count aa" 100 (Dyn_fm.count fm "aa");
  (match Dyn_fm.search fm "aa" with
  | (d, 0) :: _ -> Alcotest.(check bool) "locate fresh doc" true (d >= n)
  | other -> Alcotest.failf "unexpected aa matches: %d" (List.length other));
  for d = 0 to n + 99 do
    if Dyn_fm.mem fm d then ignore (Dyn_fm.delete fm d)
  done;
  check "empty" 0 (Dyn_fm.total_symbols fm)

(* --- space accounting: every figure derives from word_bits --- *)

let test_dbv_space_word_bits () =
  let w = Dsdg_bits.Popcount.word_bits in
  let bv = Dyn_bitvec.create () in
  for i = 0 to 4999 do
    Dyn_bitvec.push_back bv (i mod 5 = 0)
  done;
  let bits = Dyn_bitvec.space_bits bv in
  Alcotest.(check bool) "multiple of word_bits" true (bits mod w = 0);
  Alcotest.(check bool) "covers payload" true (bits >= 5000);
  (* 8-word leaves at >= half fill plus O(1) words of overhead each:
     far below the 63-bit-word figure the old accounting inflated *)
  Alcotest.(check bool) "bounded" true (bits <= 5000 * 6)

let qsuite =
  List.map Qc.to_alcotest
    [ prop_dbv_matches_model; prop_dwt_matches_model; prop_dynfm_matches_naive ]

let suite =
  [ ("dyn_bitvec push/get", `Quick, test_dbv_push_and_get);
    ("dyn_bitvec insert middle", `Quick, test_dbv_insert_middle);
    ("dyn_bitvec delete", `Quick, test_dbv_delete);
    ("dyn_bitvec select out of range", `Quick, test_dbv_select_out_of_range);
    ("dyn_bitvec split_leaf boundaries", `Quick, test_split_chunk_boundaries);
    ("dyn_bitvec space from word_bits", `Quick, test_dbv_space_word_bits);
    ("dyn_fm basic", `Quick, test_dynfm_basic);
    ("dyn_fm delete", `Quick, test_dynfm_delete);
    ("dyn_fm empty doc", `Quick, test_dynfm_empty_doc);
    ("dyn_fm spsi backend", `Quick, test_dynfm_spsi_backend);
    ("dyn_fm sentinel churn 5k", `Slow, test_dynfm_churn_5k) ]
  @ qsuite
