(* Tests for dsdg_sa: SA-IS vs naive, BWT roundtrip, LCP. *)

open Dsdg_sa

let check_arr msg a b = Alcotest.(check (array int)) msg a b

let ints_of_string s = Array.init (String.length s) (fun i -> Char.code s.[i])

let test_sais_known () =
  (* banana: suffixes sorted: a(5) ana(3) anana(1) banana(0) na(4) nana(2) *)
  let s = ints_of_string "banana" in
  check_arr "banana" [| 5; 3; 1; 0; 4; 2 |] (Sais.suffix_array s);
  check_arr "banana naive" [| 5; 3; 1; 0; 4; 2 |] (Sais.naive s)

let test_sais_mississippi () =
  let s = ints_of_string "mississippi" in
  check_arr "mississippi" (Sais.naive s) (Sais.suffix_array s)

let test_sais_edge () =
  check_arr "empty" [||] (Sais.suffix_array [||]);
  check_arr "single" [| 0 |] (Sais.suffix_array [| 5 |]);
  check_arr "aa" [| 1; 0 |] (Sais.suffix_array [| 1; 1 |]);
  check_arr "ab" [| 0; 1 |] (Sais.suffix_array [| 1; 2 |]);
  check_arr "ba" [| 1; 0 |] (Sais.suffix_array [| 2; 1 |])

let test_sais_repetitive () =
  (* deeply repetitive inputs exercise the recursion *)
  List.iter
    (fun s ->
      let a = ints_of_string s in
      check_arr s (Sais.naive a) (Sais.suffix_array a))
    [ "aaaaaaaaaa"; "abababab"; "abcabcabcabc"; "aabaabaab";
      "zyxzyxzyx"; "abaababaabaab" ]

let test_sais_large_random () =
  let st = Random.State.make [| 7 |] in
  List.iter
    (fun (n, sigma) ->
      let s = Array.init n (fun _ -> Random.State.int st sigma) in
      check_arr (Printf.sprintf "random n=%d sigma=%d" n sigma) (Sais.naive s)
        (Sais.suffix_array s))
    [ (100, 2); (100, 4); (1000, 2); (1000, 26); (2000, 256); (3000, 3) ]

let test_sais_tick () =
  (* tick must be called at least n times and not change the result *)
  let s = ints_of_string "the quick brown fox jumps over the lazy dog" in
  let ticks = ref 0 in
  let sa = Sais.suffix_array ~tick:(fun () -> incr ticks) s in
  check_arr "tick result" (Sais.naive s) sa;
  Alcotest.(check bool) "ticks >= n" true (!ticks >= Array.length s)

let prop_sais =
  QCheck.Test.make ~name:"sais agrees with naive" ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(0 -- 200) (int_bound 7)))
    (fun (sigma, l) ->
      let s = Array.of_list (List.map (fun x -> x mod sigma) l) in
      Sais.suffix_array s = Sais.naive s)

let prop_sais_is_permutation =
  QCheck.Test.make ~name:"sais output is a permutation" ~count:200
    QCheck.(list_of_size Gen.(0 -- 300) (int_bound 3))
    (fun l ->
      let s = Array.of_list l in
      let sa = Sais.suffix_array s in
      let n = Array.length s in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) sa;
      Array.length sa = n && Array.for_all (fun b -> b) seen)

let test_bwt_known () =
  (* classic example with sentinel: BWT of "banana$" *)
  let b = Bwt.transform (ints_of_string "banana") in
  (* rows: $banana, a$banan, ana$ban, anana$b, banana$, na$bana, nana$ba *)
  (* L column: a n n b $ a a  (with +1 shift and sentinel 0) *)
  check_arr "banana bwt"
    [| Char.code 'a' + 1; Char.code 'n' + 1; Char.code 'n' + 1; Char.code 'b' + 1; 0;
       Char.code 'a' + 1; Char.code 'a' + 1 |]
    b

let test_bwt_roundtrip () =
  List.iter
    (fun s ->
      let a = ints_of_string s in
      check_arr ("roundtrip " ^ s) a (Bwt.inverse (Bwt.transform a)))
    [ "banana"; "mississippi"; "abracadabra"; "a"; "aaaa"; "the quick brown fox" ]

let prop_bwt_roundtrip =
  QCheck.Test.make ~name:"bwt: inverse . transform = id" ~count:300
    QCheck.(list_of_size Gen.(1 -- 300) (int_bound 30))
    (fun l ->
      let s = Array.of_list l in
      Bwt.inverse (Bwt.transform s) = s)

let prop_bwt_is_permutation_of_text =
  QCheck.Test.make ~name:"bwt is a permutation of text+sentinel" ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 10))
    (fun l ->
      let s = Array.of_list l in
      let b = Bwt.transform s in
      let sorted x = List.sort compare (Array.to_list x) in
      sorted b = sorted (Array.append [| 0 |] (Array.map (fun x -> x + 1) s)))

let test_lcp_known () =
  let s = ints_of_string "banana" in
  let sa = Sais.suffix_array s in
  (* suffixes: a ana anana banana na nana -> lcp 0 1 3 0 0 2 *)
  check_arr "banana lcp" [| 0; 1; 3; 0; 0; 2 |] (Lcp.of_sa s sa)

let prop_lcp =
  QCheck.Test.make ~name:"kasai lcp agrees with naive" ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 4))
    (fun l ->
      let s = Array.of_list l in
      let sa = Sais.suffix_array s in
      Lcp.of_sa s sa = Lcp.naive s sa)

let qsuite =
  List.map Qc.to_alcotest
    [ prop_sais; prop_sais_is_permutation; prop_bwt_roundtrip;
      prop_bwt_is_permutation_of_text; prop_lcp ]

let suite =
  [ ("sais banana", `Quick, test_sais_known);
    ("sais mississippi", `Quick, test_sais_mississippi);
    ("sais edge cases", `Quick, test_sais_edge);
    ("sais repetitive", `Quick, test_sais_repetitive);
    ("sais large random", `Quick, test_sais_large_random);
    ("sais tick", `Quick, test_sais_tick);
    ("bwt banana", `Quick, test_bwt_known);
    ("bwt roundtrip", `Quick, test_bwt_roundtrip);
    ("lcp banana", `Quick, test_lcp_known) ]
  @ qsuite
