(* Tests for dsdg_bp: balanced parentheses (vs a naive matcher) and the
   compressed suffix tree (structural invariants vs definitions). *)

open Dsdg_bp

let check = Alcotest.(check int)

(* --- naive paren helpers --- *)

let naive_match (s : string) =
  (* position -> matching position *)
  let n = String.length s in
  let m = Array.make n (-1) in
  let stack = ref [] in
  String.iteri
    (fun i ch ->
      if ch = '(' then stack := i :: !stack
      else
        match !stack with
        | j :: rest ->
          m.(i) <- j;
          m.(j) <- i;
          stack := rest
        | [] -> failwith "unbalanced")
    s;
  m

let naive_excess s i =
  let e = ref 0 in
  for j = 0 to i do
    e := !e + (if s.[j] = '(' then 1 else -1)
  done;
  !e

(* random balanced string via random tree walk *)
let random_balanced st n_pairs =
  let buf = Buffer.create (2 * n_pairs) in
  let opens = ref 0 and closes = ref 0 in
  while !closes < n_pairs do
    if
      !opens < n_pairs
      && (!opens = !closes || Random.State.float st 1.0 < 0.55)
    then begin
      Buffer.add_char buf '(';
      incr opens
    end
    else begin
      Buffer.add_char buf ')';
      incr closes
    end
  done;
  (* wrap in a root so enclose is defined for inner nodes *)
  "(" ^ Buffer.contents buf ^ ")"

let test_bp_basic () =
  let s = "((()())(()))" in
  let bp = Balanced_parens.of_string s in
  let m = naive_match s in
  for i = 0 to String.length s - 1 do
    if s.[i] = '(' then check (Printf.sprintf "close %d" i) m.(i) (Balanced_parens.find_close bp i)
    else check (Printf.sprintf "open %d" i) m.(i) (Balanced_parens.find_open bp i)
  done;
  (* enclose *)
  Alcotest.(check (option int)) "enclose root" None (Balanced_parens.enclose bp 0);
  Alcotest.(check (option int)) "enclose 1" (Some 0) (Balanced_parens.enclose bp 1);
  Alcotest.(check (option int)) "enclose 2" (Some 1) (Balanced_parens.enclose bp 2)

let test_bp_excess () =
  let s = "(()(()))" in
  let bp = Balanced_parens.of_string s in
  for i = 0 to String.length s - 1 do
    check (Printf.sprintf "excess %d" i) (naive_excess s i) (Balanced_parens.excess bp i)
  done

let prop_bp_matching =
  QCheck.Test.make ~name:"bp find_close/find_open/enclose match naive" ~count:100
    QCheck.(pair (int_bound 10000) (int_range 1 300))
    (fun (seed, pairs) ->
      let st = Random.State.make [| seed; 17 |] in
      let s = random_balanced st pairs in
      let bp = Balanced_parens.of_string s in
      let m = naive_match s in
      let ok = ref true in
      String.iteri
        (fun i ch ->
          if ch = '(' then begin
            if Balanced_parens.find_close bp i <> m.(i) then ok := false;
            (* naive enclose: scan left for the nearest unmatched open *)
            let rec up j depth =
              if j < 0 then None
              else if s.[j] = ')' then up (j - 1) (depth + 1)
              else if depth > 0 then up (j - 1) (depth - 1)
              else Some j
            in
            if Balanced_parens.enclose bp i <> up (i - 1) 0 then ok := false
          end
          else if Balanced_parens.find_open bp i <> m.(i) then ok := false)
        s;
      !ok)

let prop_bp_rmq =
  QCheck.Test.make ~name:"bp rmq matches naive excess minimum" ~count:100
    QCheck.(triple (int_bound 10000) (int_range 1 200) (pair (int_bound 500) (int_bound 500)))
    (fun (seed, pairs, (a, b)) ->
      let st = Random.State.make [| seed; 19 |] in
      let s = random_balanced st pairs in
      let n = String.length s in
      let bp = Balanced_parens.of_string s in
      let i = min (a mod n) (b mod n) and j = max (a mod n) (b mod n) in
      let naive_pos = ref i and naive_min = ref (naive_excess s i) in
      for p = i to j do
        let e = naive_excess s p in
        if e < !naive_min then begin
          naive_min := e;
          naive_pos := p
        end
      done;
      Balanced_parens.rmq bp i j = !naive_pos)

(* --- CST --- *)

let test_cst_banana () =
  let cst = Cst.build_string "banana" in
  check "leaves" 6 (Cst.leaf_count cst);
  let root = Cst.root cst in
  let l, r = Cst.sa_interval cst root in
  check "root interval lo" 0 l;
  check "root interval hi" 6 r;
  (* the "ana" node: suffixes ana, anana share prefix of length 3 *)
  let leaf_ana = Cst.leaf cst 1 (* SA rank of "ana" *) in
  let leaf_anana = Cst.leaf cst 2 in
  let v = Cst.lca cst leaf_ana leaf_anana in
  check "string_depth(lca(ana, anana))" 3 (Cst.string_depth cst v);
  check "subtree leaves" 2 (Cst.subtree_leaves cst v);
  (* the "a" node covers a, ana, anana *)
  let leaf_a = Cst.leaf cst 0 in
  let va = Cst.lca cst leaf_a leaf_anana in
  check "string_depth(a-node)" 1 (Cst.string_depth cst va);
  check "a-node leaves" 3 (Cst.subtree_leaves cst va)

let test_cst_children_partition () =
  let cst = Cst.build_string "mississippi" in
  let rec visit v =
    if not (Cst.is_leaf cst v) then begin
      let l, r = Cst.sa_interval cst v in
      let kids = Cst.children cst v in
      Alcotest.(check bool) "at least 2 children" true (List.length kids >= 2);
      (* children intervals partition the parent interval, in order *)
      let cur = ref l in
      List.iter
        (fun c ->
          let cl, cr = Cst.sa_interval cst c in
          check "contiguous" !cur cl;
          Alcotest.(check bool) "nonempty" true (cr > cl);
          cur := cr;
          (* parent pointer consistent *)
          Alcotest.(check (option int)) "parent" (Some v) (Cst.parent cst c);
          visit c)
        kids;
      check "covers" r !cur
    end
  in
  visit (Cst.root cst)

let test_cst_string_depth_prefix_property () =
  (* every pair of suffixes below a node shares a prefix of length >=
     string_depth, and some pair realizes it exactly *)
  let text = "abracadabra" in
  let cst = Cst.build_string text in
  let n = String.length text in
  let suffix k = String.sub text k (n - k) in
  let common a b =
    let rec go i = if i < String.length a && i < String.length b && a.[i] = b.[i] then go (i + 1) else i in
    go 0
  in
  let rec visit v =
    if not (Cst.is_leaf cst v) then begin
      let l, r = Cst.sa_interval cst v in
      let d = Cst.string_depth cst v in
      let sa_of k = suffix (Cst.sa cst).(k) in
      let m = ref max_int in
      for i = l to r - 2 do
        let c = common (sa_of i) (sa_of (i + 1)) in
        if c < !m then m := c
      done;
      check (Printf.sprintf "depth at %d" v) !m d;
      List.iter visit (Cst.children cst v)
    end
  in
  visit (Cst.root cst)

let prop_cst_lca =
  QCheck.Test.make ~name:"cst lca agrees with parent-walk lca" ~count:60
    QCheck.(pair (int_bound 10000) (string_of_size Gen.(2 -- 60)))
    (fun (seed, raw) ->
      QCheck.assume (String.length raw >= 2);
      let text = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) raw in
      let cst = Cst.build_string text in
      let st = Random.State.make [| seed; 23 |] in
      let n = Cst.leaf_count cst in
      let ancestors v =
        let rec go acc v = match Cst.parent cst v with None -> v :: acc | Some p -> go (v :: acc) p in
        go [] v
      in
      let naive_lca u v =
        let au = ancestors u and av = ancestors v in
        let rec common last = function
          | x :: xs, y :: ys when x = y -> common x (xs, ys)
          | _ -> last
        in
        common (Cst.root cst) (au, av)
      in
      let ok = ref true in
      for _ = 1 to 20 do
        let u = Cst.leaf cst (Random.State.int st n) in
        let v = Cst.leaf cst (Random.State.int st n) in
        if Cst.lca cst u v <> naive_lca u v then ok := false
      done;
      !ok)

(* cross-validation: descending the CST by a pattern must land on the
   same suffix-array interval that the FM-index's backward search finds *)
let prop_cst_locus_matches_fm =
  QCheck.Test.make ~name:"cst pattern locus = fm-index range" ~count:60
    QCheck.(triple (int_bound 10000) (string_of_size Gen.(3 -- 80)) (string_of_size Gen.(1 -- 4)))
    (fun (seed, raw, p_raw) ->
      QCheck.assume (String.length raw >= 3 && String.length p_raw >= 1);
      ignore seed;
      let text = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) raw in
      let p = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) p_raw in
      let cst = Cst.build_string text in
      (* locus by explicit interval narrowing over the CST's suffix array *)
      let sa = Cst.sa cst in
      let n = String.length text in
      let rec descend v matched =
        if matched >= String.length p then Some v
        else if Cst.is_leaf cst v then begin
          (* compare the rest of the pattern against the single suffix *)
          let l, _ = Cst.sa_interval cst v in
          let suf = sa.(l) in
          let rec cmp k =
            if matched + k >= String.length p then Some v
            else if suf + matched + k >= n then None
            else if text.[suf + matched + k] = p.[matched + k] then cmp (k + 1)
            else None
          in
          cmp 0
        end
        else begin
          let d = min (Cst.string_depth cst v) (String.length p) in
          (* verify the edge part up to d using any suffix below v *)
          let l, _ = Cst.sa_interval cst v in
          let suf = sa.(l) in
          let rec edge_ok k = k >= d || (suf + k < n && text.[suf + k] = p.[k] && edge_ok (k + 1)) in
          if not (edge_ok matched) then None
          else if d >= String.length p then Some v
          else begin
            (* pick the child whose first letter at depth d matches *)
            let rec pick = function
              | [] -> None
              | c :: rest ->
                let cl, _ = Cst.sa_interval cst c in
                if sa.(cl) + d < n && text.[sa.(cl) + d] = p.[d] then descend c d else pick rest
            in
            pick (Cst.children cst v)
          end
        end
      in
      let fm = Dsdg_fm.Fm_index.build ~sample:2 [| text |] in
      let fm_count = Dsdg_fm.Fm_index.count fm p in
      match descend (Cst.root cst) 0 with
      | None -> fm_count = 0
      | Some v ->
        let l, r = Cst.sa_interval cst v in
        r - l = fm_count)

let qsuite =
  List.map Qc.to_alcotest
    [ prop_bp_matching; prop_bp_rmq; prop_cst_lca; prop_cst_locus_matches_fm ]

let suite =
  [ ("bp basic", `Quick, test_bp_basic);
    ("bp excess", `Quick, test_bp_excess);
    ("cst banana", `Quick, test_cst_banana);
    ("cst children partition", `Quick, test_cst_children_partition);
    ("cst string depth", `Quick, test_cst_string_depth_prefix_property) ]
  @ qsuite
