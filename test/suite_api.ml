(* Tests for the public Dynamic_index API: every variant x backend
   combination must behave identically on the same operation stream. *)

open Dsdg_core

let check = Alcotest.(check int)

let all_configs =
  [ (Dynamic_index.Amortized, Dynamic_index.Fm, "t1/fm");
    (Dynamic_index.Amortized, Dynamic_index.Plain_sa, "t1/sa");
    (Dynamic_index.Amortized_loglog, Dynamic_index.Fm, "t3/fm");
    (Dynamic_index.Worst_case, Dynamic_index.Fm, "t2/fm");
    (Dynamic_index.Worst_case, Dynamic_index.Plain_sa, "t2/sa");
    (Dynamic_index.Amortized, Dynamic_index.Csa, "t1/csa");
    (Dynamic_index.Worst_case, Dynamic_index.Csa, "t2/csa") ]

let naive_search (docs : (int * string) list) (p : string) : (int * int) list =
  let res = ref [] in
  let pl = String.length p in
  List.iter
    (fun (d, str) ->
      for off = 0 to String.length str - pl do
        if String.sub str off pl = p then res := (d, off) :: !res
      done)
    docs;
  List.sort compare !res

let battery (variant, backend, name) () =
  let idx = Dynamic_index.create ~variant ~backend ~sample:2 ~tau:4 () in
  Alcotest.(check bool) (name ^ " describe nonempty") true (String.length (Dynamic_index.describe idx) > 0);
  let st = Random.State.make [| 1234 |] in
  let model = Hashtbl.create 32 in
  for step = 1 to 80 do
    if Random.State.float st 1.0 < 0.65 || Hashtbl.length model = 0 then begin
      let len = Random.State.int st 50 in
      let text = String.init len (fun _ -> Char.chr (97 + Random.State.int st 3)) in
      let id = Dynamic_index.insert idx text in
      Alcotest.(check bool) (name ^ " fresh id") false (Hashtbl.mem model id);
      Hashtbl.replace model id text
    end
    else begin
      let ids = Hashtbl.fold (fun d _ acc -> d :: acc) model [] in
      let id = List.nth ids (Random.State.int st (List.length ids)) in
      Alcotest.(check bool) (name ^ " delete") true (Dynamic_index.delete idx id);
      Hashtbl.remove model id
    end;
    if step mod 16 = 0 then begin
      let live = Hashtbl.fold (fun d s acc -> (d, s) :: acc) model [] in
      List.iter
        (fun p ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s step %d %s" name step p)
            (naive_search live p) (Dynamic_index.search idx p);
          check (Printf.sprintf "%s count %s" name p) (List.length (naive_search live p))
            (Dynamic_index.count idx p))
        [ "a"; "ab"; "ba" ]
    end
  done;
  check (name ^ " doc_count") (Hashtbl.length model) (Dynamic_index.doc_count idx);
  Hashtbl.iter
    (fun id text ->
      Alcotest.(check bool) (name ^ " mem") true (Dynamic_index.mem idx id);
      Alcotest.(check (option string)) (name ^ " extract") (Some text)
        (Dynamic_index.extract idx ~doc:id ~off:0 ~len:(String.length text)))
    model;
  Alcotest.(check bool) (name ^ " space positive") true
    (Dynamic_index.doc_count idx = 0 || Dynamic_index.space_bits idx > 0)

(* Double-delete regression: the second delete of the same id (and a
   delete of a never-existing id) must return false and leave doc_count,
   total_symbols and query results untouched -- in every variant. *)
let double_delete (variant, backend, name) () =
  let idx = Dynamic_index.create ~variant ~backend ~sample:2 ~tau:4 () in
  let ids = List.init 25 (fun i -> Dynamic_index.insert idx (Printf.sprintf "twice doc %d" i)) in
  let victim = List.nth ids 7 in
  Alcotest.(check bool) (name ^ " first delete") true (Dynamic_index.delete idx victim);
  let docs = Dynamic_index.doc_count idx and syms = Dynamic_index.total_symbols idx in
  Alcotest.(check bool) (name ^ " double delete") false (Dynamic_index.delete idx victim);
  Alcotest.(check bool) (name ^ " unknown delete") false (Dynamic_index.delete idx 99999);
  check (name ^ " doc_count unchanged") docs (Dynamic_index.doc_count idx);
  check (name ^ " symbols unchanged") syms (Dynamic_index.total_symbols idx);
  Alcotest.(check bool) (name ^ " victim stays dead") false (Dynamic_index.mem idx victim);
  check (name ^ " count intact") 24 (Dynamic_index.count idx "twice doc")

let test_iter_matches () =
  let idx = Dynamic_index.create () in
  let id = Dynamic_index.insert idx "abcabc" in
  let acc = ref [] in
  Dynamic_index.iter_matches idx "abc" ~f:(fun ~doc ~off -> acc := (doc, off) :: !acc);
  Alcotest.(check (list (pair int int))) "iter" [ (id, 0); (id, 3) ] (List.sort compare !acc)

let test_delete_unknown () =
  let idx = Dynamic_index.create () in
  Alcotest.(check bool) "delete unknown" false (Dynamic_index.delete idx 42);
  Alcotest.(check bool) "mem unknown" false (Dynamic_index.mem idx 42)

let test_unicode_bytes () =
  (* the index is byte-oriented: any byte except none is fine *)
  let idx = Dynamic_index.create () in
  let text = "caf\xc3\xa9 na\xc3\xafve" in
  let id = Dynamic_index.insert idx text in
  check "count byte seq" 2 (Dynamic_index.count idx "\xc3\xa9" + Dynamic_index.count idx "\xc3\xaf");
  Alcotest.(check (option string)) "extract roundtrip" (Some text)
    (Dynamic_index.extract idx ~doc:id ~off:0 ~len:(String.length text))

let suite =
  List.map (fun cfg -> (let _, _, n = cfg in n ^ " churn battery"), `Quick, battery cfg) all_configs
  @ List.map
      (fun cfg -> (let _, _, n = cfg in n ^ " double delete"), `Quick, double_delete cfg)
      all_configs
  @ [ ("iter_matches", `Quick, test_iter_matches);
      ("delete unknown", `Quick, test_delete_unknown);
      ("unicode bytes", `Quick, test_unicode_bytes) ]
