(* Tests for dsdg_binrel: static deletion-only relation, fully-dynamic
   relation, and the directed graph view -- against naive set models. *)

open Dsdg_binrel

let check = Alcotest.(check int)
let check_l = Alcotest.(check (list int))

(* --- Static_binrel --- *)

let sample_pairs = [| (10, 1); (10, 3); (20, 1); (30, 2); (30, 1); (30, 3); (40, 7) |]

let test_static_queries () =
  let sb = Static_binrel.build ~tau:4 sample_pairs in
  check "live" 7 (Static_binrel.live_pairs sb);
  Alcotest.(check bool) "related 10 1" true (Static_binrel.related sb 10 1);
  Alcotest.(check bool) "related 10 2" false (Static_binrel.related sb 10 2);
  Alcotest.(check bool) "related 99 1" false (Static_binrel.related sb 99 1);
  Alcotest.(check bool) "related 10 99" false (Static_binrel.related sb 10 99);
  let labs o =
    let acc = ref [] in
    Static_binrel.labels_of_object sb o ~f:(fun a -> acc := a :: !acc);
    List.sort compare !acc
  in
  let objs a =
    let acc = ref [] in
    Static_binrel.objects_of_label sb a ~f:(fun o -> acc := o :: !acc);
    List.sort compare !acc
  in
  check_l "labels 10" [ 1; 3 ] (labs 10);
  check_l "labels 30" [ 1; 2; 3 ] (labs 30);
  check_l "labels 40" [ 7 ] (labs 40);
  check_l "labels 99" [] (labs 99);
  check_l "objects 1" [ 10; 20; 30 ] (objs 1);
  check_l "objects 3" [ 10; 30 ] (objs 3);
  check_l "objects 7" [ 40 ] (objs 7);
  check_l "objects 9" [] (objs 9);
  check "count labels 30" 3 (Static_binrel.count_labels_of_object sb 30);
  check "count objects 1" 3 (Static_binrel.count_objects_of_label sb 1)

let test_static_delete () =
  let sb = Static_binrel.build ~tau:4 sample_pairs in
  Alcotest.(check bool) "delete" true (Static_binrel.delete sb 30 1);
  Alcotest.(check bool) "delete twice" false (Static_binrel.delete sb 30 1);
  Alcotest.(check bool) "related gone" false (Static_binrel.related sb 30 1);
  Alcotest.(check bool) "sibling intact" true (Static_binrel.related sb 30 2);
  check "count labels 30" 2 (Static_binrel.count_labels_of_object sb 30);
  check "count objects 1" 2 (Static_binrel.count_objects_of_label sb 1);
  let objs1 = ref [] in
  Static_binrel.objects_of_label sb 1 ~f:(fun o -> objs1 := o :: !objs1);
  check_l "objects 1 after" [ 10; 20 ] (List.sort compare !objs1);
  (* purge accounting *)
  ignore (Static_binrel.delete sb 10 1);
  Alcotest.(check bool) "needs purge at 2/7 dead (tau=4)" true (Static_binrel.needs_purge sb);
  Alcotest.(check (list (pair int int))) "live list"
    [ (10, 3); (20, 1); (30, 2); (30, 3); (40, 7) ]
    (List.sort compare (Static_binrel.live_pairs_list sb))

let test_static_duplicate_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Static_binrel.build: duplicate pair") (fun () ->
      ignore (Static_binrel.build ~tau:4 [| (1, 2); (1, 2) |]))

(* --- Dyn_binrel under churn --- *)

let naive_labels model o = List.sort compare (List.filter_map (fun (o', a) -> if o' = o then Some a else None) model)
let naive_objects model a = List.sort compare (List.filter_map (fun (o, a') -> if a' = a then Some o else None) model)

let test_dyn_basic () =
  let r = Dyn_binrel.create ~tau:4 () in
  Alcotest.(check bool) "add" true (Dyn_binrel.add r 5 100);
  Alcotest.(check bool) "add dup" false (Dyn_binrel.add r 5 100);
  Alcotest.(check bool) "related" true (Dyn_binrel.related r 5 100);
  Alcotest.(check bool) "remove" true (Dyn_binrel.remove r 5 100);
  Alcotest.(check bool) "remove again" false (Dyn_binrel.remove r 5 100);
  Alcotest.(check bool) "not related" false (Dyn_binrel.related r 5 100);
  check "live" 0 (Dyn_binrel.live_pairs r)

let test_dyn_cascade () =
  (* enough inserts to overflow C0 and cascade into static structures *)
  let r = Dyn_binrel.create ~tau:4 () in
  for o = 0 to 99 do
    for a = 0 to 9 do
      ignore (Dyn_binrel.add r o ((o + a) mod 37))
    done
  done;
  Alcotest.(check bool) "merges happened" true ((Dyn_binrel.stats r).Dyn_binrel.merges > 0);
  check "labels of 50" 10 (Dyn_binrel.count_labels_of_object r 50);
  check_l "labels of 0" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (Dyn_binrel.labels_of_object_list r 0)

let prop_dyn_matches_model =
  QCheck.Test.make ~name:"dyn_binrel matches naive model under churn" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 50 400))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 41 |] in
      let r = Dyn_binrel.create ~tau:4 () in
      let model = ref [] in
      for _ = 1 to ops do
        let o = Random.State.int st 20 and a = Random.State.int st 15 in
        if Random.State.float st 1.0 < 0.65 then begin
          let added = Dyn_binrel.add r o a in
          let expected = not (List.mem (o, a) !model) in
          if added <> expected then failwith "add mismatch";
          if added then model := (o, a) :: !model
        end
        else begin
          let removed = Dyn_binrel.remove r o a in
          let expected = List.mem (o, a) !model in
          if removed <> expected then failwith "remove mismatch";
          if removed then model := List.filter (fun p -> p <> (o, a)) !model
        end
      done;
      let ok = ref (Dyn_binrel.live_pairs r = List.length !model) in
      for o = 0 to 19 do
        if Dyn_binrel.labels_of_object_list r o <> naive_labels !model o then ok := false;
        if Dyn_binrel.count_labels_of_object r o <> List.length (naive_labels !model o) then ok := false
      done;
      for a = 0 to 14 do
        if Dyn_binrel.objects_of_label_list r a <> naive_objects !model a then ok := false;
        if Dyn_binrel.count_objects_of_label r a <> List.length (naive_objects !model a) then ok := false
      done;
      !ok)

(* --- Digraph --- *)

let test_graph_basic () =
  let g = Digraph.create ~tau:4 () in
  Alcotest.(check bool) "add" true (Digraph.add_edge g 1 2);
  ignore (Digraph.add_edge g 1 3);
  ignore (Digraph.add_edge g 2 3);
  ignore (Digraph.add_edge g 3 1);
  check "edges" 4 (Digraph.edge_count g);
  check_l "succ 1" [ 2; 3 ] (Digraph.successors g 1);
  check_l "pred 3" [ 1; 2 ] (Digraph.predecessors g 3);
  check "out 1" 2 (Digraph.out_degree g 1);
  check "in 3" 2 (Digraph.in_degree g 3);
  Alcotest.(check bool) "mem" true (Digraph.mem_edge g 2 3);
  Alcotest.(check bool) "not mem" false (Digraph.mem_edge g 3 2);
  ignore (Digraph.remove_edge g 1 3);
  check_l "succ 1 after" [ 2 ] (Digraph.successors g 1);
  check_l "pred 3 after" [ 2 ] (Digraph.predecessors g 3)

let test_graph_self_loops_and_churn () =
  let g = Digraph.create ~tau:4 () in
  for u = 0 to 30 do
    ignore (Digraph.add_edge g u u);
    ignore (Digraph.add_edge g u ((u + 1) mod 31))
  done;
  Alcotest.(check bool) "self loop" true (Digraph.mem_edge g 5 5);
  check "out 5" 2 (Digraph.out_degree g 5);
  ignore (Digraph.remove_edge g 5 5);
  Alcotest.(check bool) "self loop gone" false (Digraph.mem_edge g 5 5);
  check "out 5 after" 1 (Digraph.out_degree g 5)

let prop_graph_vs_model =
  QCheck.Test.make ~name:"digraph matches edge-set model" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 50 300))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 43 |] in
      let g = Digraph.create ~tau:4 () in
      let model = Hashtbl.create 64 in
      for _ = 1 to ops do
        let u = Random.State.int st 12 and v = Random.State.int st 12 in
        if Random.State.float st 1.0 < 0.65 then begin
          ignore (Digraph.add_edge g u v);
          Hashtbl.replace model (u, v) ()
        end
        else begin
          ignore (Digraph.remove_edge g u v);
          Hashtbl.remove model (u, v)
        end
      done;
      let ok = ref (Digraph.edge_count g = Hashtbl.length model) in
      for u = 0 to 11 do
        let succ = List.sort compare (Hashtbl.fold (fun (a, b) () acc -> if a = u then b :: acc else acc) model []) in
        let pred = List.sort compare (Hashtbl.fold (fun (a, b) () acc -> if b = u then a :: acc else acc) model []) in
        if Digraph.successors g u <> succ then ok := false;
        if Digraph.predecessors g u <> pred then ok := false;
        if Digraph.out_degree g u <> List.length succ then ok := false;
        if Digraph.in_degree g u <> List.length pred then ok := false
      done;
      !ok)

(* --- random streams against the shared Dsdg_check relation model --- *)

module Rel = Dsdg_check.Model.Rel

let prop_dyn_vs_shared_model =
  QCheck.Test.make ~name:"dyn_binrel matches shared Rel model on random streams" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 80 400))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 53 |] in
      let r = Dyn_binrel.create ~tau:4 () in
      let m = Rel.create () in
      let ok = ref true in
      for _ = 1 to ops do
        let o = Random.State.int st 16 and a = Random.State.int st 12 in
        if Random.State.float st 1.0 < 0.6 then begin
          if Dyn_binrel.add r o a <> Rel.add m o a then ok := false
        end
        else if Dyn_binrel.remove r o a <> Rel.remove m o a then ok := false;
        (* interleave queries with the churn, not only at the end *)
        if Random.State.int st 8 = 0 then begin
          let o' = Random.State.int st 16 and a' = Random.State.int st 12 in
          if Dyn_binrel.related r o' a' <> Rel.related m o' a' then ok := false;
          if Dyn_binrel.labels_of_object_list r o' <> Rel.labels_of_object m o' then ok := false;
          if Dyn_binrel.objects_of_label_list r a' <> Rel.objects_of_label m a' then ok := false;
          if Dyn_binrel.count_labels_of_object r o' <> Rel.count_labels_of_object m o' then
            ok := false
        end
      done;
      !ok && Dyn_binrel.live_pairs r = Rel.size m)

let prop_graph_vs_shared_model =
  QCheck.Test.make ~name:"digraph matches shared Rel model on random streams" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 80 400))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 59 |] in
      let g = Digraph.create ~tau:4 () in
      let m = Rel.create () in
      let ok = ref true in
      for _ = 1 to ops do
        let u = Random.State.int st 14 and v = Random.State.int st 14 in
        if Random.State.float st 1.0 < 0.6 then begin
          if Digraph.add_edge g u v <> Rel.add m u v then ok := false
        end
        else if Digraph.remove_edge g u v <> Rel.remove m u v then ok := false;
        if Random.State.int st 8 = 0 then begin
          let w = Random.State.int st 14 in
          if Digraph.successors g w <> Rel.labels_of_object m w then ok := false;
          if Digraph.predecessors g w <> Rel.objects_of_label m w then ok := false;
          if Digraph.out_degree g w <> Rel.count_labels_of_object m w then ok := false;
          if Digraph.in_degree g w <> Rel.count_objects_of_label m w then ok := false
        end
      done;
      !ok && Digraph.edge_count g = Rel.size m)

(* --- Triple_store --- *)

let test_triples_basic () =
  let ts = Triple_store.create ~tau:4 () in
  Alcotest.(check bool) "add" true (Triple_store.add ts ~s:1 ~p:10 ~o:2);
  Alcotest.(check bool) "dup" false (Triple_store.add ts ~s:1 ~p:10 ~o:2);
  ignore (Triple_store.add ts ~s:1 ~p:10 ~o:3);
  ignore (Triple_store.add ts ~s:1 ~p:11 ~o:2);
  ignore (Triple_store.add ts ~s:4 ~p:10 ~o:2);
  check "count" 4 (Triple_store.triple_count ts);
  Alcotest.(check bool) "mem" true (Triple_store.mem ts ~s:1 ~p:10 ~o:3);
  Alcotest.(check bool) "not mem" false (Triple_store.mem ts ~s:4 ~p:11 ~o:2);
  Alcotest.(check (list (triple int int int))) "subject 1"
    [ (1, 10, 2); (1, 10, 3); (1, 11, 2) ]
    (List.sort compare (Triple_store.triples_with_subject ts 1));
  Alcotest.(check (list (triple int int int))) "object 2"
    [ (1, 10, 2); (1, 11, 2); (4, 10, 2) ]
    (List.sort compare (Triple_store.triples_with_object ts 2));
  Alcotest.(check (list (triple int int int))) "subject 1, pred 10"
    [ (1, 10, 2); (1, 10, 3) ]
    (List.sort compare (Triple_store.triples_with_subject_predicate ts 1 10));
  check "count subject 1" 3 (Triple_store.count_with_subject ts 1);
  check "count object 2" 3 (Triple_store.count_with_object ts 2);
  check "count pred 10" 3 (Triple_store.count_with_predicate ts 10);
  (* removal cleans up predicate links *)
  Alcotest.(check bool) "remove" true (Triple_store.remove ts ~s:1 ~p:11 ~o:2);
  check_l "preds of 1 after" [ 10 ] (Triple_store.predicates_of_subject ts 1);
  Alcotest.(check bool) "remove gone" false (Triple_store.remove ts ~s:1 ~p:11 ~o:2)

let prop_triples_vs_model =
  QCheck.Test.make ~name:"triple store matches naive set model" ~count:25
    QCheck.(pair (int_bound 10000) (int_range 50 250))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 47 |] in
      let ts = Triple_store.create ~tau:4 () in
      let model = Hashtbl.create 64 in
      for _ = 1 to ops do
        let s = Random.State.int st 10 and p = Random.State.int st 4 and o = Random.State.int st 10 in
        if Random.State.float st 1.0 < 0.65 then begin
          ignore (Triple_store.add ts ~s ~p ~o);
          Hashtbl.replace model (s, p, o) ()
        end
        else begin
          ignore (Triple_store.remove ts ~s ~p ~o);
          Hashtbl.remove model (s, p, o)
        end
      done;
      let ok = ref (Triple_store.triple_count ts = Hashtbl.length model) in
      for x = 0 to 9 do
        let subj = List.sort compare (Hashtbl.fold (fun (s, p, o) () acc -> if s = x then (s, p, o) :: acc else acc) model []) in
        let obj = List.sort compare (Hashtbl.fold (fun (s, p, o) () acc -> if o = x then (s, p, o) :: acc else acc) model []) in
        if List.sort compare (Triple_store.triples_with_subject ts x) <> subj then ok := false;
        if List.sort compare (Triple_store.triples_with_object ts x) <> obj then ok := false;
        if Triple_store.count_with_subject ts x <> List.length subj then ok := false
      done;
      !ok)

let qsuite =
  List.map Qc.to_alcotest
    [ prop_dyn_matches_model; prop_graph_vs_model; prop_dyn_vs_shared_model;
      prop_graph_vs_shared_model; prop_triples_vs_model ]

let suite =
  [ ("static queries", `Quick, test_static_queries);
    ("static delete", `Quick, test_static_delete);
    ("static duplicate rejected", `Quick, test_static_duplicate_rejected);
    ("dyn basic", `Quick, test_dyn_basic);
    ("dyn cascade", `Quick, test_dyn_cascade);
    ("graph basic", `Quick, test_graph_basic);
    ("graph self loops", `Quick, test_graph_self_loops_and_churn);
    ("triple store basic", `Quick, test_triples_basic) ]
  @ qsuite
