(* Tests for dsdg_binrel: static deletion-only relation, fully-dynamic
   relation, and the directed graph view -- against naive set models. *)

open Dsdg_binrel

let check = Alcotest.(check int)
let check_l = Alcotest.(check (list int))

(* --- Static_binrel --- *)

let sample_pairs = [| (10, 1); (10, 3); (20, 1); (30, 2); (30, 1); (30, 3); (40, 7) |]

let test_static_queries () =
  let sb = Static_binrel.build ~tau:4 sample_pairs in
  check "live" 7 (Static_binrel.live_pairs sb);
  Alcotest.(check bool) "related 10 1" true (Static_binrel.related sb 10 1);
  Alcotest.(check bool) "related 10 2" false (Static_binrel.related sb 10 2);
  Alcotest.(check bool) "related 99 1" false (Static_binrel.related sb 99 1);
  Alcotest.(check bool) "related 10 99" false (Static_binrel.related sb 10 99);
  let labs o =
    let acc = ref [] in
    Static_binrel.labels_of_object sb o ~f:(fun a -> acc := a :: !acc);
    List.sort compare !acc
  in
  let objs a =
    let acc = ref [] in
    Static_binrel.objects_of_label sb a ~f:(fun o -> acc := o :: !acc);
    List.sort compare !acc
  in
  check_l "labels 10" [ 1; 3 ] (labs 10);
  check_l "labels 30" [ 1; 2; 3 ] (labs 30);
  check_l "labels 40" [ 7 ] (labs 40);
  check_l "labels 99" [] (labs 99);
  check_l "objects 1" [ 10; 20; 30 ] (objs 1);
  check_l "objects 3" [ 10; 30 ] (objs 3);
  check_l "objects 7" [ 40 ] (objs 7);
  check_l "objects 9" [] (objs 9);
  check "count labels 30" 3 (Static_binrel.count_labels_of_object sb 30);
  check "count objects 1" 3 (Static_binrel.count_objects_of_label sb 1)

let test_static_delete () =
  let sb = Static_binrel.build ~tau:4 sample_pairs in
  Alcotest.(check bool) "delete" true (Static_binrel.delete sb 30 1);
  Alcotest.(check bool) "delete twice" false (Static_binrel.delete sb 30 1);
  Alcotest.(check bool) "related gone" false (Static_binrel.related sb 30 1);
  Alcotest.(check bool) "sibling intact" true (Static_binrel.related sb 30 2);
  check "count labels 30" 2 (Static_binrel.count_labels_of_object sb 30);
  check "count objects 1" 2 (Static_binrel.count_objects_of_label sb 1);
  let objs1 = ref [] in
  Static_binrel.objects_of_label sb 1 ~f:(fun o -> objs1 := o :: !objs1);
  check_l "objects 1 after" [ 10; 20 ] (List.sort compare !objs1);
  (* purge accounting *)
  ignore (Static_binrel.delete sb 10 1);
  Alcotest.(check bool) "needs purge at 2/7 dead (tau=4)" true (Static_binrel.needs_purge sb);
  Alcotest.(check (list (pair int int))) "live list"
    [ (10, 3); (20, 1); (30, 2); (30, 3); (40, 7) ]
    (List.sort compare (Static_binrel.live_pairs_list sb))

let test_static_duplicate_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Static_binrel.build: duplicate pair") (fun () ->
      ignore (Static_binrel.build ~tau:4 [| (1, 2); (1, 2) |]))

(* --- Dyn_binrel under churn --- *)

let naive_labels model o = List.sort compare (List.filter_map (fun (o', a) -> if o' = o then Some a else None) model)
let naive_objects model a = List.sort compare (List.filter_map (fun (o, a') -> if a' = a then Some o else None) model)

let test_dyn_basic () =
  let r = Dyn_binrel.create ~tau:4 () in
  Alcotest.(check bool) "add" true (Dyn_binrel.add r 5 100);
  Alcotest.(check bool) "add dup" false (Dyn_binrel.add r 5 100);
  Alcotest.(check bool) "related" true (Dyn_binrel.related r 5 100);
  Alcotest.(check bool) "remove" true (Dyn_binrel.remove r 5 100);
  Alcotest.(check bool) "remove again" false (Dyn_binrel.remove r 5 100);
  Alcotest.(check bool) "not related" false (Dyn_binrel.related r 5 100);
  check "live" 0 (Dyn_binrel.live_pairs r)

let test_dyn_cascade () =
  (* enough inserts to overflow C0 and cascade into static structures *)
  let r = Dyn_binrel.create ~tau:4 () in
  for o = 0 to 99 do
    for a = 0 to 9 do
      ignore (Dyn_binrel.add r o ((o + a) mod 37))
    done
  done;
  Alcotest.(check bool) "merges happened" true ((Dyn_binrel.stats r).Dyn_binrel.merges > 0);
  check "labels of 50" 10 (Dyn_binrel.count_labels_of_object r 50);
  check_l "labels of 0" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (Dyn_binrel.labels_of_object_list r 0)

let prop_dyn_matches_model =
  QCheck.Test.make ~name:"dyn_binrel matches naive model under churn" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 50 400))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 41 |] in
      let r = Dyn_binrel.create ~tau:4 () in
      let model = ref [] in
      for _ = 1 to ops do
        let o = Random.State.int st 20 and a = Random.State.int st 15 in
        if Random.State.float st 1.0 < 0.65 then begin
          let added = Dyn_binrel.add r o a in
          let expected = not (List.mem (o, a) !model) in
          if added <> expected then failwith "add mismatch";
          if added then model := (o, a) :: !model
        end
        else begin
          let removed = Dyn_binrel.remove r o a in
          let expected = List.mem (o, a) !model in
          if removed <> expected then failwith "remove mismatch";
          if removed then model := List.filter (fun p -> p <> (o, a)) !model
        end
      done;
      let ok = ref (Dyn_binrel.live_pairs r = List.length !model) in
      for o = 0 to 19 do
        if Dyn_binrel.labels_of_object_list r o <> naive_labels !model o then ok := false;
        if Dyn_binrel.count_labels_of_object r o <> List.length (naive_labels !model o) then ok := false
      done;
      for a = 0 to 14 do
        if Dyn_binrel.objects_of_label_list r a <> naive_objects !model a then ok := false;
        if Dyn_binrel.count_objects_of_label r a <> List.length (naive_objects !model a) then ok := false
      done;
      !ok)

(* --- Digraph --- *)

let test_graph_basic () =
  let g = Digraph.create ~tau:4 () in
  Alcotest.(check bool) "add" true (Digraph.add_edge g 1 2);
  ignore (Digraph.add_edge g 1 3);
  ignore (Digraph.add_edge g 2 3);
  ignore (Digraph.add_edge g 3 1);
  check "edges" 4 (Digraph.edge_count g);
  check_l "succ 1" [ 2; 3 ] (Digraph.successors g 1);
  check_l "pred 3" [ 1; 2 ] (Digraph.predecessors g 3);
  check "out 1" 2 (Digraph.out_degree g 1);
  check "in 3" 2 (Digraph.in_degree g 3);
  Alcotest.(check bool) "mem" true (Digraph.mem_edge g 2 3);
  Alcotest.(check bool) "not mem" false (Digraph.mem_edge g 3 2);
  ignore (Digraph.remove_edge g 1 3);
  check_l "succ 1 after" [ 2 ] (Digraph.successors g 1);
  check_l "pred 3 after" [ 2 ] (Digraph.predecessors g 3)

let test_graph_self_loops_and_churn () =
  let g = Digraph.create ~tau:4 () in
  for u = 0 to 30 do
    ignore (Digraph.add_edge g u u);
    ignore (Digraph.add_edge g u ((u + 1) mod 31))
  done;
  Alcotest.(check bool) "self loop" true (Digraph.mem_edge g 5 5);
  check "out 5" 2 (Digraph.out_degree g 5);
  ignore (Digraph.remove_edge g 5 5);
  Alcotest.(check bool) "self loop gone" false (Digraph.mem_edge g 5 5);
  check "out 5 after" 1 (Digraph.out_degree g 5)

let prop_graph_vs_model =
  QCheck.Test.make ~name:"digraph matches edge-set model" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 50 300))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 43 |] in
      let g = Digraph.create ~tau:4 () in
      let model = Hashtbl.create 64 in
      for _ = 1 to ops do
        let u = Random.State.int st 12 and v = Random.State.int st 12 in
        if Random.State.float st 1.0 < 0.65 then begin
          ignore (Digraph.add_edge g u v);
          Hashtbl.replace model (u, v) ()
        end
        else begin
          ignore (Digraph.remove_edge g u v);
          Hashtbl.remove model (u, v)
        end
      done;
      let ok = ref (Digraph.edge_count g = Hashtbl.length model) in
      for u = 0 to 11 do
        let succ = List.sort compare (Hashtbl.fold (fun (a, b) () acc -> if a = u then b :: acc else acc) model []) in
        let pred = List.sort compare (Hashtbl.fold (fun (a, b) () acc -> if b = u then a :: acc else acc) model []) in
        if Digraph.successors g u <> succ then ok := false;
        if Digraph.predecessors g u <> pred then ok := false;
        if Digraph.out_degree g u <> List.length succ then ok := false;
        if Digraph.in_degree g u <> List.length pred then ok := false
      done;
      !ok)

(* --- random streams against the shared Dsdg_check relation model --- *)

module Rel = Dsdg_check.Model.Rel

let prop_dyn_vs_shared_model =
  QCheck.Test.make ~name:"dyn_binrel matches shared Rel model on random streams" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 80 400))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 53 |] in
      let r = Dyn_binrel.create ~tau:4 () in
      let m = Rel.create () in
      let ok = ref true in
      for _ = 1 to ops do
        let o = Random.State.int st 16 and a = Random.State.int st 12 in
        if Random.State.float st 1.0 < 0.6 then begin
          if Dyn_binrel.add r o a <> Rel.add m o a then ok := false
        end
        else if Dyn_binrel.remove r o a <> Rel.remove m o a then ok := false;
        (* interleave queries with the churn, not only at the end *)
        if Random.State.int st 8 = 0 then begin
          let o' = Random.State.int st 16 and a' = Random.State.int st 12 in
          if Dyn_binrel.related r o' a' <> Rel.related m o' a' then ok := false;
          if Dyn_binrel.labels_of_object_list r o' <> Rel.labels_of_object m o' then ok := false;
          if Dyn_binrel.objects_of_label_list r a' <> Rel.objects_of_label m a' then ok := false;
          if Dyn_binrel.count_labels_of_object r o' <> Rel.count_labels_of_object m o' then
            ok := false
        end
      done;
      !ok && Dyn_binrel.live_pairs r = Rel.size m)

let prop_graph_vs_shared_model =
  QCheck.Test.make ~name:"digraph matches shared Rel model on random streams" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 80 400))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 59 |] in
      let g = Digraph.create ~tau:4 () in
      let m = Rel.create () in
      let ok = ref true in
      for _ = 1 to ops do
        let u = Random.State.int st 14 and v = Random.State.int st 14 in
        if Random.State.float st 1.0 < 0.6 then begin
          if Digraph.add_edge g u v <> Rel.add m u v then ok := false
        end
        else if Digraph.remove_edge g u v <> Rel.remove m u v then ok := false;
        if Random.State.int st 8 = 0 then begin
          let w = Random.State.int st 14 in
          if Digraph.successors g w <> Rel.labels_of_object m w then ok := false;
          if Digraph.predecessors g w <> Rel.objects_of_label m w then ok := false;
          if Digraph.out_degree g w <> Rel.count_labels_of_object m w then ok := false;
          if Digraph.in_degree g w <> Rel.count_objects_of_label m w then ok := false
        end
      done;
      !ok && Digraph.edge_count g = Rel.size m)

(* --- backend conformance matrix: str vs k2 vs the naive model --- *)

let each_backend f = List.iter f Rel_backend.all_kinds

(* k2 quadrant boundaries: coordinates straddling leaf (8) and quadrant
   (powers of two) edges, inserted, queried and removed, against the
   shared model. *)
let test_k2_quadrant_boundaries () =
  let coords = [ 0; 1; 7; 8; 9; 15; 16; 31; 32; 63; 64; 65; 127; 128 ] in
  let r = K2_relation.create () in
  let m = Rel.create () in
  List.iter
    (fun o -> List.iter (fun a -> Alcotest.(check bool) "add agrees"
        (Rel.add m o a) (K2_relation.add r o a)) coords)
    coords;
  check "live" (Rel.size m) (K2_relation.live_pairs r);
  List.iter
    (fun o ->
      check_l (Printf.sprintf "row %d" o) (Rel.labels_of_object m o)
        (K2_relation.labels_of_object_list r o);
      check_l (Printf.sprintf "col %d" o) (Rel.objects_of_label m o)
        (K2_relation.objects_of_label_list r o))
    coords;
  (* remove every pair with o >= 16, re-check rows and pruning *)
  List.iter
    (fun o ->
      List.iter
        (fun a ->
          if o >= 16 then
            Alcotest.(check bool) "remove agrees" (Rel.remove m o a) (K2_relation.remove r o a))
        coords)
    coords;
  check "live after" (Rel.size m) (K2_relation.live_pairs r);
  List.iter
    (fun o ->
      check_l (Printf.sprintf "row %d after" o) (Rel.labels_of_object m o)
        (K2_relation.labels_of_object_list r o))
    coords;
  Alcotest.(check (list (pair int int))) "pair set" (Rel.pairs m) (K2_relation.pairs_list r)

(* node-universe growth: the matrix side quadruples on demand, old
   pairs stay put, and removal prunes the far blocks back out. *)
let test_k2_universe_growth () =
  let r = K2_relation.create () in
  check "initial side" 64 (K2_relation.side r);
  ignore (K2_relation.add r 0 0);
  ignore (K2_relation.add r 63 63);
  check "still 64" 64 (K2_relation.side r);
  ignore (K2_relation.add r 64 0);
  check "quadrupled" 256 (K2_relation.side r);
  Alcotest.(check bool) "old pair intact" true (K2_relation.related r 63 63);
  ignore (K2_relation.add r 5000 3);
  check "grown past 5000" 16384 (K2_relation.side r);
  (* 64 -> 256 earlier, then 256 -> 16384: four quadruplings in total *)
  check "grows counted" 4 (K2_relation.stats r).K2_relation.grows;
  Alcotest.(check bool) "far pair" true (K2_relation.related r 5000 3);
  check_l "col 3" [ 5000 ] (K2_relation.objects_of_label_list r 3);
  check_l "row 5000" [ 3 ] (K2_relation.labels_of_object_list r 5000);
  let bits_with = K2_relation.space_bits r in
  Alcotest.(check bool) "remove far" true (K2_relation.remove r 5000 3);
  Alcotest.(check bool) "far blocks pruned" true (K2_relation.space_bits r < bits_with);
  check "live" 3 (K2_relation.live_pairs r);
  Alcotest.(check (list (pair int int))) "pairs" [ (0, 0); (63, 63); (64, 0) ]
    (K2_relation.pairs_list r);
  Alcotest.check_raises "negative id" (Invalid_argument "K2_relation.add: negative id")
    (fun () -> ignore (K2_relation.add r (-1) 0))

(* one 64x64 block driven through both leaf representations: past the
   sparse->dense flip (335 pairs) and back down through the hysteresis
   band, agreeing with the model throughout. *)
let test_k2_adaptive_leaf () =
  let r = K2_relation.create () in
  let m = Rel.create () in
  let bits_sparse = ref 0 in
  for i = 0 to 19 do
    for j = 0 to 19 do
      if i = 10 && j = 0 then bits_sparse := K2_relation.space_bits r;
      ignore (K2_relation.add r i j);
      ignore (Rel.add m i j)
    done
  done;
  (* 400 pairs in one block: dense bitmap, bounded by the 4096-bit leaf *)
  check "live" 400 (K2_relation.live_pairs r);
  Alcotest.(check bool) "dense leaf stays within bitmap bounds" true
    (K2_relation.space_bits r < 4096 + (8 * 64));
  for i = 0 to 19 do
    check_l (Printf.sprintf "dense row %d" i) (Rel.labels_of_object m i)
      (K2_relation.labels_of_object_list r i);
    check_l (Printf.sprintf "dense col %d" i) (Rel.objects_of_label m i)
      (K2_relation.objects_of_label_list r i)
  done;
  (* drain below the hysteresis floor: back to sparse, still agreeing *)
  for i = 0 to 19 do
    for j = 0 to 19 do
      if (i + j) mod 3 <> 0 then begin
        ignore (K2_relation.remove r i j);
        ignore (Rel.remove m i j)
      end
    done
  done;
  check "live after drain" (Rel.size m) (K2_relation.live_pairs r);
  for i = 0 to 19 do
    check_l (Printf.sprintf "sparse row %d" i) (Rel.labels_of_object m i)
      (K2_relation.labels_of_object_list r i)
  done;
  Alcotest.(check (list (pair int int))) "pair set after drain" (Rel.pairs m)
    (K2_relation.pairs_list r)

(* the same scripted churn through the seam, every backend vs model *)
let test_backend_matrix_churn () =
  each_backend (fun kind ->
      let name = Rel_backend.kind_to_string kind in
      let r = Rel_backend.create ~tau:4 kind in
      let m = Rel.create () in
      let st = Random.State.make [| 7; 31 |] in
      for _ = 1 to 600 do
        let o = Random.State.int st 40 and a = Random.State.int st 40 in
        if Random.State.float st 1.0 < 0.6 then begin
          if Rel_backend.add r o a <> Rel.add m o a then Alcotest.failf "%s: add" name
        end
        else if Rel_backend.remove r o a <> Rel.remove m o a then Alcotest.failf "%s: remove" name
      done;
      check (name ^ " live") (Rel.size m) (Rel_backend.live_pairs r);
      for x = 0 to 39 do
        if Rel_backend.labels_of_object_list r x <> Rel.labels_of_object m x then
          Alcotest.failf "%s: labels of %d" name x;
        if Rel_backend.objects_of_label_list r x <> Rel.objects_of_label m x then
          Alcotest.failf "%s: objects of %d" name x;
        if Rel_backend.count_labels_of_object r x <> Rel.count_labels_of_object m x then
          Alcotest.failf "%s: count labels of %d" name x
      done;
      Alcotest.(check (list (pair int int))) (name ^ " pair set") (Rel.pairs m)
        (Rel_backend.pairs_list r))

(* snapshot isolation: the edge list captured from a graph is immutable
   data, unaffected by writer churn -- checked from a concurrent reader
   domain while the writer keeps mutating. *)
let test_snapshot_isolation_concurrent () =
  each_backend (fun kind ->
      let name = Rel_backend.kind_to_string kind in
      let g = Digraph.create ~tau:4 ~backend:kind () in
      for u = 0 to 19 do
        ignore (Digraph.add_edge g u ((u + 3) mod 20))
      done;
      let snapshot = Digraph.edges g in
      let reader =
        Domain.spawn (fun () ->
            let ok = ref true in
            for _ = 1 to 2000 do
              if snapshot <> List.sort compare snapshot then ok := false;
              if List.length snapshot <> 20 then ok := false
            done;
            !ok)
      in
      for u = 0 to 19 do
        ignore (Digraph.remove_edge g u ((u + 3) mod 20));
        ignore (Digraph.add_edge g u ((u + 7) mod 20))
      done;
      Alcotest.(check bool) (name ^ " reader saw a stable snapshot") true (Domain.join reader);
      Alcotest.(check bool) (name ^ " snapshot differs from new state") true
        (snapshot <> Digraph.edges g))

(* graph-level backend equivalence incl. the of_edges recovery path *)
let test_digraph_backend_roundtrip () =
  let st = Random.State.make [| 5; 77 |] in
  let edges = Array.init 300 (fun _ -> (Random.State.int st 50, Random.State.int st 50)) in
  let mk kind =
    let g = Digraph.create ~backend:kind () in
    Array.iter (fun (u, v) -> ignore (Digraph.add_edge g u v)) edges;
    g
  in
  let gs = mk Rel_backend.Str and gk = mk Rel_backend.K2 in
  Alcotest.(check (list (pair int int))) "edge sets agree" (Digraph.edges gs) (Digraph.edges gk);
  check "counts agree" (Digraph.edge_count gs) (Digraph.edge_count gk);
  Alcotest.(check bool) "backends recorded" true
    (Digraph.backend gs = Rel_backend.Str && Digraph.backend gk = Rel_backend.K2);
  (* persisted pairs re-ingest into either backend *)
  let re = Digraph.of_edges ~backend:Rel_backend.K2 (Digraph.edges gs) in
  Alcotest.(check (list (pair int int))) "of_edges roundtrip" (Digraph.edges gs)
    (Digraph.edges re);
  for u = 0 to 49 do
    check_l (Printf.sprintf "succ %d" u) (Digraph.successors gs u) (Digraph.successors gk u);
    check_l (Printf.sprintf "pred %d" u) (Digraph.predecessors gs u) (Digraph.predecessors gk u)
  done

let test_triple_store_k2 () =
  let ts = Triple_store.create ~tau:4 ~rel_backend:Rel_backend.K2 () in
  Alcotest.(check bool) "backend" true (Triple_store.backend ts = Rel_backend.K2);
  Alcotest.(check bool) "add" true (Triple_store.add ts ~s:1 ~p:10 ~o:2);
  ignore (Triple_store.add ts ~s:1 ~p:10 ~o:3);
  ignore (Triple_store.add ts ~s:4 ~p:11 ~o:2);
  Alcotest.(check (list (triple int int int))) "subject 1"
    [ (1, 10, 2); (1, 10, 3) ]
    (List.sort compare (Triple_store.triples_with_subject ts 1));
  check "count object 2" 2 (Triple_store.count_with_object ts 2);
  Alcotest.(check bool) "remove" true (Triple_store.remove ts ~s:1 ~p:10 ~o:2);
  check "count" 2 (Triple_store.triple_count ts)

(* QCheck: both backends reproduce the model's pair set byte-for-byte
   on random streams, including far-out ids (k2 growth). *)
let prop_backend_pairset_agreement =
  QCheck.Test.make ~name:"rel backends agree on pair sets under churn" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 60 300))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 61 |] in
      let rels = List.map (fun k -> Rel_backend.create ~tau:4 k) Rel_backend.all_kinds in
      let m = Rel.create () in
      let ok = ref true in
      for _ = 1 to ops do
        let id () =
          if Random.State.int st 30 = 0 then Random.State.int st 500 else Random.State.int st 18
        in
        let o = id () and a = id () in
        if Random.State.float st 1.0 < 0.6 then begin
          let want = Rel.add m o a in
          List.iter (fun r -> if Rel_backend.add r o a <> want then ok := false) rels
        end
        else begin
          let want = Rel.remove m o a in
          List.iter (fun r -> if Rel_backend.remove r o a <> want then ok := false) rels
        end
      done;
      let pairs = Rel.pairs m in
      List.iter (fun r -> if Rel_backend.pairs_list r <> pairs then ok := false) rels;
      !ok)

(* --- Triple_store --- *)

let test_triples_basic () =
  let ts = Triple_store.create ~tau:4 () in
  Alcotest.(check bool) "add" true (Triple_store.add ts ~s:1 ~p:10 ~o:2);
  Alcotest.(check bool) "dup" false (Triple_store.add ts ~s:1 ~p:10 ~o:2);
  ignore (Triple_store.add ts ~s:1 ~p:10 ~o:3);
  ignore (Triple_store.add ts ~s:1 ~p:11 ~o:2);
  ignore (Triple_store.add ts ~s:4 ~p:10 ~o:2);
  check "count" 4 (Triple_store.triple_count ts);
  Alcotest.(check bool) "mem" true (Triple_store.mem ts ~s:1 ~p:10 ~o:3);
  Alcotest.(check bool) "not mem" false (Triple_store.mem ts ~s:4 ~p:11 ~o:2);
  Alcotest.(check (list (triple int int int))) "subject 1"
    [ (1, 10, 2); (1, 10, 3); (1, 11, 2) ]
    (List.sort compare (Triple_store.triples_with_subject ts 1));
  Alcotest.(check (list (triple int int int))) "object 2"
    [ (1, 10, 2); (1, 11, 2); (4, 10, 2) ]
    (List.sort compare (Triple_store.triples_with_object ts 2));
  Alcotest.(check (list (triple int int int))) "subject 1, pred 10"
    [ (1, 10, 2); (1, 10, 3) ]
    (List.sort compare (Triple_store.triples_with_subject_predicate ts 1 10));
  check "count subject 1" 3 (Triple_store.count_with_subject ts 1);
  check "count object 2" 3 (Triple_store.count_with_object ts 2);
  check "count pred 10" 3 (Triple_store.count_with_predicate ts 10);
  (* removal cleans up predicate links *)
  Alcotest.(check bool) "remove" true (Triple_store.remove ts ~s:1 ~p:11 ~o:2);
  check_l "preds of 1 after" [ 10 ] (Triple_store.predicates_of_subject ts 1);
  Alcotest.(check bool) "remove gone" false (Triple_store.remove ts ~s:1 ~p:11 ~o:2)

let prop_triples_vs_model =
  QCheck.Test.make ~name:"triple store matches naive set model" ~count:25
    QCheck.(pair (int_bound 10000) (int_range 50 250))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 47 |] in
      let ts = Triple_store.create ~tau:4 () in
      let model = Hashtbl.create 64 in
      for _ = 1 to ops do
        let s = Random.State.int st 10 and p = Random.State.int st 4 and o = Random.State.int st 10 in
        if Random.State.float st 1.0 < 0.65 then begin
          ignore (Triple_store.add ts ~s ~p ~o);
          Hashtbl.replace model (s, p, o) ()
        end
        else begin
          ignore (Triple_store.remove ts ~s ~p ~o);
          Hashtbl.remove model (s, p, o)
        end
      done;
      let ok = ref (Triple_store.triple_count ts = Hashtbl.length model) in
      for x = 0 to 9 do
        let subj = List.sort compare (Hashtbl.fold (fun (s, p, o) () acc -> if s = x then (s, p, o) :: acc else acc) model []) in
        let obj = List.sort compare (Hashtbl.fold (fun (s, p, o) () acc -> if o = x then (s, p, o) :: acc else acc) model []) in
        if List.sort compare (Triple_store.triples_with_subject ts x) <> subj then ok := false;
        if List.sort compare (Triple_store.triples_with_object ts x) <> obj then ok := false;
        if Triple_store.count_with_subject ts x <> List.length subj then ok := false
      done;
      !ok)

let qsuite =
  List.map Qc.to_alcotest
    [ prop_dyn_matches_model; prop_graph_vs_model; prop_dyn_vs_shared_model;
      prop_graph_vs_shared_model; prop_backend_pairset_agreement; prop_triples_vs_model ]

let suite =
  [ ("static queries", `Quick, test_static_queries);
    ("static delete", `Quick, test_static_delete);
    ("static duplicate rejected", `Quick, test_static_duplicate_rejected);
    ("dyn basic", `Quick, test_dyn_basic);
    ("dyn cascade", `Quick, test_dyn_cascade);
    ("graph basic", `Quick, test_graph_basic);
    ("graph self loops", `Quick, test_graph_self_loops_and_churn);
    ("k2 quadrant boundaries", `Quick, test_k2_quadrant_boundaries);
    ("k2 universe growth", `Quick, test_k2_universe_growth);
    ("k2 adaptive leaf", `Quick, test_k2_adaptive_leaf);
    ("backend matrix churn", `Quick, test_backend_matrix_churn);
    ("snapshot isolation across backends", `Quick, test_snapshot_isolation_concurrent);
    ("digraph backend roundtrip", `Quick, test_digraph_backend_roundtrip);
    ("triple store on k2", `Quick, test_triple_store_k2);
    ("triple store basic", `Quick, test_triples_basic) ]
  @ qsuite
