(* Tests for the service plane (lib/serve): protocol round-trips and
   the bounded frame reader, server request handling over a Unix
   socket, malformed-frame isolation (connection dies, server does
   not), group-commit visibility under concurrent writers, graceful
   drain (stop -> checkpoint -> zero-replay reopen), and the
   kill-and-recover guarantee through the server path: every mutation
   acknowledged to a client survives crash recovery. *)

module Protocol = Dsdg_serve.Protocol
module Server = Dsdg_serve.Server
module Client = Dsdg_serve.Client
module Load_gen = Dsdg_serve.Load_gen
module Durable = Dsdg_store.Durable
module Recovery = Dsdg_store.Recovery
module Trace = Dsdg_check.Trace
module Di = Dsdg_core.Dynamic_index

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  d

let with_dir prefix f =
  let d = tmp_dir prefix in
  Fun.protect ~finally:(fun () -> Dsdg_store.Kill_check.reset_dir d) (fun () -> f d)

let sock_of dir = Filename.concat dir "dsdg.sock"

(* Start a server over a fresh store in [dir]; the server owns the
   store ([Server.stop] closes it). *)
let start_server ?config ?(sync = Dsdg_store.Wal.Always) dir =
  let store, _info =
    Durable.open_ ~config:{ Durable.default_config with sync } ~dir ()
  in
  Server.start ?config ~store (`Unix (sock_of dir))

let with_server ?config ?sync dir f =
  let srv = start_server ?config ?sync dir in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

(* --- protocol --- *)

let roundtrip_response r =
  match Protocol.parse_response (Protocol.response_to_string r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "parse_response failed: %s" e

let test_protocol_response_roundtrip () =
  let check what sent expect =
    Alcotest.(check bool) what true (roundtrip_response sent = expect)
  in
  (* Id and Bool share Int's wire spelling: the verb-specific reading
     happens in the client, not in parse_response *)
  check "id" (Protocol.Id 7) (Protocol.Int 7);
  check "bool true" (Protocol.Bool true) (Protocol.Int 1);
  check "int" (Protocol.Int 42) (Protocol.Int 42);
  check "hits" (Protocol.Hits [ (0, 3); (2, 0) ]) (Protocol.Hits [ (0, 3); (2, 0) ]);
  check "hits empty" (Protocol.Hits []) (Protocol.Hits []);
  check "text with spaces and newline" (Protocol.Text "a b\nc\"d") (Protocol.Text "a b\nc\"d");
  check "none" Protocol.No_text Protocol.No_text;
  check "stats" (Protocol.Stats_of [ ("docs", 3); ("epoch", 9) ])
    (Protocol.Stats_of [ ("docs", 3); ("epoch", 9) ]);
  check "pong" Protocol.Pong Protocol.Pong;
  check "bye" Protocol.Bye Protocol.Bye;
  check "err" (Protocol.Err "no such \"thing\"") (Protocol.Err "no such \"thing\"")

let test_protocol_request_roundtrip () =
  let ok line =
    match Protocol.parse_request line with
    | Ok r -> Alcotest.(check string) line line (Protocol.request_to_string r)
    | Error e -> Alcotest.failf "parse_request %S failed: %s" line e
  in
  ok "+ \"hello world\\n\"";
  ok "- 7";
  ok "? \"pat\"";
  ok "# \"pat\"";
  ok "= 3 0 5";
  ok "@ 12";
  ok "stats";
  ok "ping";
  ok "quit";
  (match Protocol.parse_request "frobnicate 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk verb parsed");
  match Protocol.parse_request "+ unquoted" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unquoted insert parsed"

let test_protocol_malformed_responses () =
  List.iter
    (fun line ->
      match Protocol.parse_response line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed response %S parsed" line)
    [ ""; "ok"; "ok hits 2 1"; "ok hits x"; "ok text noquote"; "ok stats k=v"; "yes" ]

(* The replication frames: repl polls and the rec/hb/snap/chunk batch
   vocabulary, including binary-safe record and chunk payloads. *)
let test_protocol_repl_roundtrip () =
  let req r =
    match Protocol.parse_request (Protocol.request_to_string r) with
    | Ok r' -> Alcotest.(check bool) (Protocol.request_to_string r) true (r' = r)
    | Error e -> Alcotest.failf "repl request round-trip failed: %s" e
  in
  req (Protocol.Repl { stream = "wal"; from = 0 });
  req (Protocol.Repl { stream = "wal3"; from = 712 });
  req (Protocol.Repl { stream = "meta"; from = 9 });
  List.iter
    (fun r -> Alcotest.(check bool) (Protocol.response_to_string r) true (roundtrip_response r = r))
    [ Protocol.Rec (0, {|+ "doc with \"quotes\" and spaces"|});
      Protocol.Rec (41, "- 7");
      Protocol.Rec (3, "I 12 1");
      Protocol.Hb { bound = 0; epoch = 0 };
      Protocol.Hb { bound = 917; epoch = 44 };
      Protocol.Snap { serial = 12; chunks = 3 };
      Protocol.Chunk "raw\nbytes\x00with newline and nul";
      Protocol.Chunk "" ];
  (* a record line is framed verbatim: a raw newline inside one would
     break framing, so the escaped spelling must survive the trip *)
  (match roundtrip_response (Protocol.Rec (5, {|+ "line\nbreak"|})) with
  | Protocol.Rec (5, line) -> Alcotest.(check string) "record verbatim" {|+ "line\nbreak"|} line
  | _ -> Alcotest.fail "rec frame changed shape");
  List.iter
    (fun line ->
      match Protocol.parse_response line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed repl frame %S parsed" line)
    [ "rec"; "rec x + \"a\""; "hb 3"; "hb x y"; "snap 1"; "chunk noquote" ];
  match Protocol.parse_request "repl wal" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "positionless repl poll parsed"

(* The bounded reader, against a socketpair. *)
let test_reader_bounds () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let r = Protocol.reader ~max_frame:8 b in
      (* two frames in one write, split across reads by the kernel or not *)
      ignore (Unix.write_substring a "one\ntwo\n" 0 8);
      Alcotest.(check bool) "frame 1" true (Protocol.read_frame r = `Frame "one");
      Alcotest.(check bool) "frame 2" true (Protocol.read_frame r = `Frame "two");
      (* an overlong frame poisons the reader *)
      ignore (Unix.write_substring a "waaaaay too long\n" 0 17);
      Alcotest.(check bool) "too long" true (Protocol.read_frame r = `Too_long);
      Alcotest.(check bool) "poisoned" true (Protocol.read_frame r = `Too_long);
      (* a fresh reader sees EOF mid-frame as EOF, partial dropped *)
      let a2, b2 = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      ignore (Unix.write_substring a2 "partial" 0 7);
      Unix.close a2;
      let r2 = Protocol.reader ~max_frame:64 b2 in
      Alcotest.(check bool) "mid-frame eof" true (Protocol.read_frame r2 = `Eof);
      Unix.close b2)

(* --- server basics --- *)

let test_serve_basic_ops () =
  with_dir "dsdg-serve-basic" (fun dir ->
      with_server dir (fun srv ->
          let c = Client.connect (`Unix (sock_of dir)) in
          Client.ping c;
          let id0 = Client.insert c "abracadabra" in
          let id1 = Client.insert c "candelabra" in
          Alcotest.(check (list int)) "ids" [ 0; 1 ] [ id0; id1 ];
          (* occurrence count: "abracadabra" holds two "abra"s *)
          Alcotest.(check int) "count abra" 3 (Client.count c "abra");
          let hits = Client.search c "abra" in
          Alcotest.(check bool) "search nonempty" true (List.length hits = 3);
          Alcotest.(check (option string)) "extract" (Some "cad") (Client.extract c ~doc:0 ~off:4 ~len:3);
          Alcotest.(check bool) "mem live" true (Client.mem c 0);
          Alcotest.(check bool) "delete" true (Client.delete c 0);
          Alcotest.(check bool) "delete again" false (Client.delete c 0);
          Alcotest.(check bool) "mem dead" false (Client.mem c 0);
          let stats = Client.stats c in
          Alcotest.(check (option int)) "stats docs" (Some 1) (List.assoc_opt "docs" stats);
          Alcotest.(check bool) "stats served" true (List.assoc "served" stats > 0);
          (* semantic error: empty pattern -> err, connection survives *)
          (match Client.count c "" with
          | _ -> Alcotest.fail "empty pattern accepted"
          | exception Client.Server_error _ -> ());
          Client.ping c;
          (* drain op is rejected but keeps the connection *)
          (match Client.raw c "!!" with
          | line -> Alcotest.(check bool) "drain rejected" true (String.length line > 3 && String.sub line 0 3 = "err")
          | exception e -> raise e);
          Client.ping c;
          Alcotest.(check bool) "ops served counted" true (Server.ops_served srv > 5);
          Client.close c))

let test_serve_malformed_frame_kills_connection_only () =
  with_dir "dsdg-serve-malformed" (fun dir ->
      with_server dir (fun _srv ->
          let addr = `Unix (sock_of dir) in
          let c1 = Client.connect addr in
          ignore (Client.insert c1 "before");
          (* malformed frame: err response, then EOF -- connection dead *)
          let line = Client.raw c1 "this is not a frame" in
          Alcotest.(check bool) "err reply" true (String.sub line 0 3 = "err");
          (match Client.ping c1 with
          | () -> Alcotest.fail "connection survived a malformed frame"
          | exception (Client.Protocol_error _ | Client.Server_error _ | Unix.Unix_error _) -> ());
          (* the server is fine: a fresh connection works *)
          let c2 = Client.connect addr in
          Alcotest.(check int) "server alive" 1 (Client.count c2 "before");
          Client.close c2))

let test_serve_max_frame_enforced () =
  with_dir "dsdg-serve-maxframe" (fun dir ->
      let config = { Server.default_config with max_frame = 64 } in
      with_server ~config dir (fun _srv ->
          let addr = `Unix (sock_of dir) in
          let c = Client.connect addr in
          let big = String.make 200 'x' in
          (match Client.insert c big with
          | _ -> Alcotest.fail "overlong frame accepted"
          | exception (Client.Server_error _ | Client.Protocol_error _ | Unix.Unix_error _) -> ());
          (* server alive, store untouched *)
          let c2 = Client.connect addr in
          Alcotest.(check int) "no doc landed" 0 (Client.count c2 "xxx");
          ignore (Client.insert c2 "small is fine");
          Client.close c2))

let test_serve_concurrent_writers () =
  with_dir "dsdg-serve-conc" (fun dir ->
      let n_threads = 4 and per = 20 in
      let acked = Array.make (n_threads * per) (-1) in
      with_server dir (fun _srv ->
          let addr = `Unix (sock_of dir) in
          let worker t () =
            let c = Client.connect addr in
            for i = 0 to per - 1 do
              let text = Printf.sprintf "writer %d item %d payload" t i in
              acked.((t * per) + i) <- Client.insert c text
            done;
            Client.close c
          in
          let threads = List.init n_threads (fun t -> Thread.create (worker t) ()) in
          List.iter Thread.join threads;
          (* every ack distinct and every doc visible to queries *)
          let sorted = Array.copy acked in
          Array.sort compare sorted;
          Array.iteri (fun i id -> Alcotest.(check int) "dense distinct ids" i id) sorted;
          let c = Client.connect addr in
          Alcotest.(check int) "all visible" (n_threads * per) (Client.count c "payload");
          Client.close c);
      (* stop checkpointed: reopen replays nothing and has everything *)
      let store, info = Durable.open_ ~dir () in
      Alcotest.(check int) "zero replay after graceful stop" 0 info.Recovery.ri_replayed;
      Alcotest.(check int) "docs after reopen" (n_threads * per) (Di.doc_count (Durable.index store));
      Durable.close store)

let test_serve_stop_idempotent_and_drain () =
  with_dir "dsdg-serve-stop" (fun dir ->
      let srv = start_server dir in
      let c = Client.connect (`Unix (sock_of dir)) in
      ignore (Client.insert c "doc");
      Server.stop srv;
      Server.stop srv;
      (* idle connection was shut down by the drain *)
      (match Client.ping c with
      | () -> Alcotest.fail "connection survived stop"
      | exception (Client.Protocol_error _ | Unix.Unix_error _) -> ());
      (* socket file is gone *)
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists (sock_of dir)))

(* --- kill-and-recover through the server path --- *)

let kill_recover_case ~torn () =
  with_dir "dsdg-serve-kill" (fun dir ->
      let n_threads = 3 and per = 15 in
      let acked = Array.make (n_threads * per) None in
      let srv = start_server ~sync:Dsdg_store.Wal.Always dir in
      let addr = `Unix (sock_of dir) in
      let worker t () =
        let c = Client.connect addr in
        for i = 0 to per - 1 do
          let text = Printf.sprintf "killer %d/%d survives" t i in
          let id = Client.insert c text in
          acked.((t * per) + i) <- Some (id, text)
        done;
        Client.close c
      in
      let threads = List.init n_threads (fun t -> Thread.create (worker t) ()) in
      List.iter Thread.join threads;
      (* crash: no drain, no checkpoint, no final fsync *)
      Server.kill srv ~torn;
      let idx, info = Recovery.open_or_recover ~dir () in
      Alcotest.(check bool) "torn tail handled" torn info.Recovery.ri_truncated;
      Array.iter
        (function
          | None -> Alcotest.fail "an insert was never acknowledged"
          | Some (id, text) ->
            Alcotest.(check bool) (Printf.sprintf "acked %d recovered" id) true (Di.mem idx id);
            Alcotest.(check (option string))
              (Printf.sprintf "acked %d text" id)
              (Some text)
              (Di.extract idx ~doc:id ~off:0 ~len:(String.length text)))
        acked;
      Di.close idx)

let test_kill_recover_clean () = kill_recover_case ~torn:false ()
let test_kill_recover_torn () = kill_recover_case ~torn:true ()

(* --- load generator --- *)

let test_load_gen_smoke () =
  with_dir "dsdg-serve-load" (fun dir ->
      with_server dir (fun _srv ->
          let r = Load_gen.run (`Unix (sock_of dir)) ~clients:3 ~ops:90 ~seed:42 in
          Alcotest.(check int) "all ops completed" 90 r.Load_gen.ops;
          Alcotest.(check int) "no errors" 0 r.Load_gen.errors;
          Alcotest.(check int) "clients" 3 r.Load_gen.clients;
          Alcotest.(check bool) "qps positive" true (r.Load_gen.qps > 0.);
          Alcotest.(check bool) "writes happened" true (r.Load_gen.writes > 0);
          Alcotest.(check bool) "queries happened" true (r.Load_gen.queries > 0);
          Alcotest.(check bool) "p50 <= p999" true (r.Load_gen.p50_us <= r.Load_gen.p999_us);
          Alcotest.(check bool) "report renders" true
            (String.length (Load_gen.report_to_string r) > 0)))

let test_load_gen_validation () =
  Alcotest.check_raises "clients < 1" (Invalid_argument "Load_gen.run: clients < 1") (fun () ->
      ignore (Load_gen.run (`Unix "/nonexistent") ~clients:0 ~ops:1 ~seed:0));
  Alcotest.check_raises "ops < 1" (Invalid_argument "Load_gen.run: ops < 1") (fun () ->
      ignore (Load_gen.run (`Unix "/nonexistent") ~clients:1 ~ops:0 ~seed:0))

let suite =
  [
    Alcotest.test_case "protocol: response round-trip" `Quick test_protocol_response_roundtrip;
    Alcotest.test_case "protocol: request round-trip" `Quick test_protocol_request_roundtrip;
    Alcotest.test_case "protocol: malformed responses rejected" `Quick test_protocol_malformed_responses;
    Alcotest.test_case "protocol: replication frames round-trip" `Quick test_protocol_repl_roundtrip;
    Alcotest.test_case "protocol: bounded reader" `Quick test_reader_bounds;
    Alcotest.test_case "serve: basic ops over unix socket" `Quick test_serve_basic_ops;
    Alcotest.test_case "serve: malformed frame kills connection only" `Quick
      test_serve_malformed_frame_kills_connection_only;
    Alcotest.test_case "serve: max_frame enforced" `Quick test_serve_max_frame_enforced;
    Alcotest.test_case "serve: concurrent writers, graceful stop" `Quick test_serve_concurrent_writers;
    Alcotest.test_case "serve: stop idempotent, drains connections" `Quick
      test_serve_stop_idempotent_and_drain;
    Alcotest.test_case "serve: kill -> recover keeps every acked write" `Quick test_kill_recover_clean;
    Alcotest.test_case "serve: kill (torn) -> recover keeps every acked write" `Quick
      test_kill_recover_torn;
    Alcotest.test_case "load: generator smoke" `Quick test_load_gen_smoke;
    Alcotest.test_case "load: argument validation" `Quick test_load_gen_validation;
  ]
