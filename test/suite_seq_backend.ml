(* Dynamic-bitvector backend conformance suite: the same harness runs
   against every backend (the AVL tree, the SPSI B-tree, and a naive
   bool-array model), driving insert/delete/set/rank/select/snapshot
   through word boundaries (61/62/63, 495/496/497) and checking
   snapshot isolation under continued mutation.  A final deep
   differential pits SPSI against AVL at sizes that force internal
   B-tree node splits, merges and borrows. *)

open Dsdg_dynseq

let check = Alcotest.(check int)

(* The naive reference: a growable bool array with O(n) everything. *)
module Model_bv : Seq_backend.S = struct
  type t = { mutable bits : bool array; mutable n : int }

  let name = "model"
  let create () = { bits = Array.make 8 false; n = 0 }
  let len t = t.n
  let ones t = Array.fold_left (fun a b -> if b then a + 1 else a) 0 (Array.sub t.bits 0 t.n)
  let zeros t = t.n - ones t

  let get t i =
    if i < 0 || i >= t.n then invalid_arg "Model_bv.get";
    t.bits.(i)

  let set t i b =
    if i < 0 || i >= t.n then invalid_arg "Model_bv.set";
    t.bits.(i) <- b

  let insert t i b =
    if i < 0 || i > t.n then invalid_arg "Model_bv.insert";
    if t.n = Array.length t.bits then begin
      let nb = Array.make (2 * t.n) false in
      Array.blit t.bits 0 nb 0 t.n;
      t.bits <- nb
    end;
    Array.blit t.bits i t.bits (i + 1) (t.n - i);
    t.bits.(i) <- b;
    t.n <- t.n + 1

  let delete t i =
    if i < 0 || i >= t.n then invalid_arg "Model_bv.delete";
    Array.blit t.bits (i + 1) t.bits i (t.n - i - 1);
    t.n <- t.n - 1

  let rank1 t i =
    if i < 0 || i > t.n then invalid_arg "Model_bv.rank1";
    let acc = ref 0 in
    for j = 0 to i - 1 do
      if t.bits.(j) then incr acc
    done;
    !acc

  let rank0 t i = i - rank1 t i

  let select_gen t b k =
    let seen = ref 0 and res = ref (-1) in
    for j = 0 to t.n - 1 do
      if !res < 0 && t.bits.(j) = b then begin
        if !seen = k then res := j;
        incr seen
      end
    done;
    if !res < 0 then invalid_arg "Model_bv.select";
    !res

  let select1 t k = if k < 0 then invalid_arg "Model_bv.select1" else select_gen t true k
  let select0 t k = if k < 0 then invalid_arg "Model_bv.select0" else select_gen t false k
  let push_back t b = insert t t.n b
  let to_bools t = List.init t.n (fun i -> t.bits.(i))
  let snapshot t = { bits = Array.copy t.bits; n = t.n }
  let space_bits t = Array.length t.bits + 128
end

let backends : (string * (module Seq_backend.S)) list =
  [ ("avl", (module Seq_backend.Avl_backend));
    ("spsi", (module Seq_backend.Spsi_backend));
    ("model", (module Model_bv)) ]

(* Word boundaries for the 62-bit packing plus both backends' leaf-split
   thresholds (AVL splits at 496, SPSI at 992). *)
let boundary_sizes = [ 61; 62; 63; 495; 496; 497; 991; 992; 993 ]

(* Deterministic boundary sweep: build to exactly [size] bits, check
   rank/select/get at every word edge, then insert and delete across the
   boundary. *)
let test_boundaries (module B : Seq_backend.S) () =
  List.iter
    (fun size ->
      let bv = B.create () in
      let expect_ones = ref 0 in
      for i = 0 to size - 1 do
        let b = i mod 3 = 0 in
        B.push_back bv b;
        if b then incr expect_ones
      done;
      check (Printf.sprintf "%s len %d" B.name size) size (B.len bv);
      check (Printf.sprintf "%s ones %d" B.name size) !expect_ones (B.ones bv);
      List.iter
        (fun pos ->
          if pos >= 0 && pos <= size then begin
            let expect = (pos + 2) / 3 in
            check (Printf.sprintf "%s rank1 %d/%d" B.name pos size) expect (B.rank1 bv pos)
          end)
        [ 0; 1; 61; 62; 63; 123; 124; 125; 495; 496; 497; size - 1; size ];
      (* select1 k lands on 3k; select0 round-trips through rank0 *)
      for k = 0 to min 9 (!expect_ones - 1) do
        check (Printf.sprintf "%s select1 %d/%d" B.name k size) (3 * k) (B.select1 bv k)
      done;
      let z = B.zeros bv in
      if z > 0 then begin
        let p = B.select0 bv (z - 1) in
        Alcotest.(check bool)
          (Printf.sprintf "%s select0 last %d" B.name size)
          true
          ((not (B.get bv p)) && B.rank0 bv (p + 1) = z)
      end;
      (* punch an insert + delete through every word edge near the end *)
      List.iter
        (fun pos ->
          if pos >= 0 && pos <= B.len bv then begin
            let before = B.len bv in
            B.insert bv pos true;
            check (Printf.sprintf "%s ins len @%d/%d" B.name pos size) (before + 1) (B.len bv);
            Alcotest.(check bool) (Printf.sprintf "%s ins get @%d/%d" B.name pos size) true (B.get bv pos);
            B.delete bv pos;
            check (Printf.sprintf "%s del len @%d/%d" B.name pos size) before (B.len bv)
          end)
        [ 0; 61; 62; 63; 495; 496; 497; size ];
      (* out-of-range raises across the board; message text is
         backend-specific, the exception constructor is the contract *)
      let raises f =
        match f () with exception Invalid_argument _ -> true | _ -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s oob raises %d" B.name size)
        true
        (raises (fun () -> B.rank1 bv (B.len bv + 1))
        && raises (fun () -> B.get bv (B.len bv))
        && raises (fun () -> B.select1 bv (B.ones bv))
        && raises (fun () -> B.select0 bv (B.zeros bv))
        && raises (fun () -> B.insert bv (-1) true)
        && raises (fun () -> B.delete bv (B.len bv))))
    boundary_sizes

(* Seeded churn property: every backend against an inline bool-list
   model, with set/snapshot mixed in.  Snapshots taken mid-stream are
   re-validated at the end against the model state captured when they
   were made. *)
let prop_backend_matches_model (name, (module B : Seq_backend.S)) =
  QCheck.Test.make
    ~name:(Printf.sprintf "seq_backend %s matches model under churn" name)
    ~count:(if name = "model" then 10 else 30)
    QCheck.(pair (int_bound 100000) (int_range 100 1500))
    (fun (seed, n) ->
      let st = Random.State.make [| seed; 0x5e71 |] in
      let bv = B.create () in
      let model = ref [] in
      (* (snapshot, frozen model) pairs re-checked after more churn *)
      let snaps = ref [] in
      let insert_at l i b =
        let rec go l i =
          match (l, i) with xs, 0 -> b :: xs | x :: xs, i -> x :: go xs (i - 1) | [], _ -> [ b ]
        in
        go l i
      in
      let delete_at l i =
        let rec go l i =
          match (l, i) with _ :: xs, 0 -> xs | x :: xs, i -> x :: go xs (i - 1) | [], _ -> []
        in
        go l i
      in
      let set_at l i b = List.mapi (fun j x -> if j = i then b else x) l in
      for step = 1 to n do
        let len = List.length !model in
        let r = Random.State.float st 1.0 in
        if r < 0.55 || len = 0 then begin
          let pos = Random.State.int st (len + 1) in
          let b = Random.State.bool st in
          B.insert bv pos b;
          model := insert_at !model pos b
        end
        else if r < 0.75 then begin
          let pos = Random.State.int st len in
          B.delete bv pos;
          model := delete_at !model pos
        end
        else if r < 0.9 then begin
          let pos = Random.State.int st len in
          let b = Random.State.bool st in
          B.set bv pos b;
          model := set_at !model pos b
        end
        else if step mod 97 = 0 then snaps := (B.snapshot bv, !model) :: !snaps
      done;
      let agrees bv model =
        let arr = Array.of_list model in
        let n = Array.length arr in
        let ones = Array.fold_left (fun a b -> if b then a + 1 else a) 0 arr in
        B.len bv = n && B.ones bv = ones
        && List.for_all
             (fun i ->
               let naive_rank = ref 0 in
               for j = 0 to i - 1 do
                 if arr.(j) then incr naive_rank
               done;
               B.rank1 bv i = !naive_rank)
             (List.filter (fun i -> i <= n) [ 0; n / 3; 61; 62; 63; n - 1; n ])
        && List.for_all (fun i -> B.get bv i = arr.(i))
             (List.filter (fun i -> i >= 0 && i < n) [ 0; 1; n / 2; n - 1 ])
        && (ones = 0
           || let k = ones - 1 in
              let p = B.select1 bv k in
              arr.(p) && B.rank1 bv p = k)
      in
      agrees bv !model && List.for_all (fun (s, m) -> agrees s m) !snaps)

(* Snapshot isolation, deterministically: freeze at a boundary length,
   then hammer the original and confirm the frozen copy never moves. *)
let test_snapshot_isolation (module B : Seq_backend.S) () =
  List.iter
    (fun size ->
      let bv = B.create () in
      for i = 0 to size - 1 do
        B.push_back bv (i land 1 = 1)
      done;
      let frozen = B.snapshot bv in
      let frozen_bits = B.to_bools frozen in
      for i = 0 to 600 do
        B.insert bv (i mod (B.len bv + 1)) (i land 1 = 0)
      done;
      while B.len bv > size / 2 do
        B.delete bv (B.len bv / 2)
      done;
      check (Printf.sprintf "%s frozen len %d" B.name size) size (B.len frozen);
      Alcotest.(check (list bool))
        (Printf.sprintf "%s frozen bits %d" B.name size)
        frozen_bits (B.to_bools frozen))
    [ 62; 496; 497; 992 ]

(* Deep differential: SPSI against AVL at sizes that force B-tree
   internal splits (> fanout * leaf_max bits) and, on the way back
   down, leaf merges, rebalances and root collapses. *)
let test_spsi_deep_vs_avl () =
  let st = Random.State.make [| 0xb7ee |] in
  let a = Dyn_bitvec.create () and s = Spsi.create () in
  let target = (Spsi.fanout * Spsi.leaf_max) + 4096 in
  while Dyn_bitvec.len a < target do
    let pos = Random.State.int st (Dyn_bitvec.len a + 1) in
    let b = Random.State.int st 4 = 0 in
    Dyn_bitvec.insert a pos b;
    Spsi.insert s pos b
  done;
  let agree tag =
    check (tag ^ " len") (Dyn_bitvec.len a) (Spsi.len s);
    check (tag ^ " ones") (Dyn_bitvec.ones a) (Spsi.ones s);
    for _ = 1 to 200 do
      let i = Random.State.int st (Dyn_bitvec.len a + 1) in
      check (Printf.sprintf "%s rank1 %d" tag i) (Dyn_bitvec.rank1 a i) (Spsi.rank1 s i)
    done;
    let ones = Dyn_bitvec.ones a and zeros = Dyn_bitvec.zeros a in
    for _ = 1 to 100 do
      if ones > 0 then begin
        let k = Random.State.int st ones in
        check (Printf.sprintf "%s select1 %d" tag k) (Dyn_bitvec.select1 a k) (Spsi.select1 s k)
      end;
      if zeros > 0 then begin
        let k = Random.State.int st zeros in
        check (Printf.sprintf "%s select0 %d" tag k) (Dyn_bitvec.select0 a k) (Spsi.select0 s k)
      end
    done
  in
  agree "grown";
  (* mixed churn at depth *)
  for _ = 1 to 4000 do
    let len = Dyn_bitvec.len a in
    if Random.State.bool st then begin
      let pos = Random.State.int st (len + 1) in
      let b = Random.State.bool st in
      Dyn_bitvec.insert a pos b;
      Spsi.insert s pos b
    end
    else begin
      let pos = Random.State.int st len in
      Dyn_bitvec.delete a pos;
      Spsi.delete s pos
    end
  done;
  agree "churned";
  (* shrink to almost nothing: forces merges all the way to root *)
  while Dyn_bitvec.len a > 40 do
    let pos = Random.State.int st (Dyn_bitvec.len a) in
    Dyn_bitvec.delete a pos;
    Spsi.delete s pos
  done;
  agree "shrunk";
  Alcotest.(check (list bool)) "shrunk bits" (Dyn_bitvec.to_bools a) (Spsi.to_bools s)

let qsuite = List.map Qc.to_alcotest (List.map prop_backend_matches_model backends)

let suite =
  List.concat_map
    (fun (name, b) ->
      [ (Printf.sprintf "%s word boundaries" name, `Quick, test_boundaries b);
        (Printf.sprintf "%s snapshot isolation" name, `Quick, test_snapshot_isolation b) ])
    backends
  @ [ ("spsi deep differential vs avl", `Quick, test_spsi_deep_vs_avl) ]
  @ qsuite
