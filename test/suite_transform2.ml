(* Tests for Transformation 2: worst-case dynamization with locked
   copies, background incremental rebuilds, Temp indexes and top
   collections -- checked against a naive model under heavy churn. *)

open Dsdg_core

module T2 = Transform2.Make (Fm_static)

let check = Alcotest.(check int)

(* naive search over live (id, text) pairs, shared with the fuzzer *)
let naive_search = Dsdg_check.Model.occurrences

let rand_doc st max_len =
  let n = Random.State.int st max_len in
  String.init n (fun _ -> Char.chr (97 + Random.State.int st 3))

let test_insert_search () =
  let t = T2.create ~sample:2 ~tau:4 () in
  let model = Hashtbl.create 16 in
  for i = 0 to 59 do
    let text = Printf.sprintf "payload %d abc" i in
    let id = T2.insert t text in
    Hashtbl.replace model id text
  done;
  check "doc_count" 60 (T2.doc_count t);
  let live = Hashtbl.fold (fun d s acc -> (d, s) :: acc) model [] in
  List.iter
    (fun p ->
      Alcotest.(check (list (pair int int))) ("search " ^ p) (naive_search live p) (T2.matches t p);
      check ("count " ^ p) (List.length (naive_search live p)) (T2.count t p))
    [ "payload"; "abc"; "5"; "1 abc"; "zz" ]

let test_background_jobs_run () =
  let t = T2.create ~sample:2 ~tau:4 ~work_factor:4 () in
  for i = 0 to 299 do
    ignore (T2.insert t (Printf.sprintf "document number %d with some padding text" i))
  done;
  let s = T2.stats t in
  Alcotest.(check bool) "jobs started" true (s.Transform2.jobs_started > 0);
  Alcotest.(check bool) "jobs completed" true (s.Transform2.jobs_completed > 0);
  check "count document" 300 (T2.count t "document");
  (* events were logged *)
  Alcotest.(check bool) "events" true (List.length (T2.events t) > 0)

let test_oversized_doc_becomes_top () =
  let t = T2.create ~sample:4 ~tau:4 () in
  (* make nf large enough to matter, then add a huge doc *)
  for i = 0 to 49 do
    ignore (T2.insert t (Printf.sprintf "filler doc %d" i))
  done;
  let big = String.make 4000 'q' in
  ignore (T2.insert t big);
  check "count q" 4000 (T2.count t "q");
  let census = T2.census t in
  Alcotest.(check bool) "some top exists" true
    (List.exists (fun (name, _, _) -> String.length name > 0 && name.[0] = 'T') census)

let test_delete_with_pending_jobs () =
  (* documents deleted while a background rebuild is in flight must not
     resurrect when the job lands *)
  let t = T2.create ~sample:2 ~tau:4 ~work_factor:1 () in
  let ids = ref [] in
  for i = 0 to 199 do
    ids := T2.insert t (Printf.sprintf "churn document %d" i) :: !ids
  done;
  (* delete half while jobs may be pending *)
  let deleted = ref [] in
  List.iteri
    (fun i id ->
      if i mod 2 = 0 then begin
        Alcotest.(check bool) "delete ok" true (T2.delete t id);
        deleted := id :: !deleted
      end)
    !ids;
  (* force everything to settle by doing more work *)
  for i = 0 to 49 do
    ignore (T2.insert t (Printf.sprintf "settle %d" i))
  done;
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "doc %d stays dead" id) false (T2.mem t id))
    !deleted;
  check "count churn" 100 (T2.count t "churn document")

let churn ~ops ~seed ~max_len () =
  let st = Random.State.make [| seed |] in
  let t = T2.create ~sample:2 ~tau:4 ~work_factor:4 () in
  let model = Hashtbl.create 64 in
  let patterns = [ "a"; "ab"; "ba"; "ca"; "bb" ] in
  let verify step =
    let live = Hashtbl.fold (fun d s acc -> (d, s) :: acc) model [] in
    List.iter
      (fun p ->
        let expected = naive_search live p in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "step %d search %s" step p)
          expected (T2.matches t p);
        check (Printf.sprintf "step %d count %s" step p) (List.length expected) (T2.count t p))
      patterns
  in
  for step = 1 to ops do
    let roll = Random.State.float st 1.0 in
    if roll < 0.6 || Hashtbl.length model = 0 then begin
      let text = rand_doc st max_len in
      let id = T2.insert t text in
      Hashtbl.replace model id text
    end
    else begin
      let ids = Hashtbl.fold (fun d _ acc -> d :: acc) model [] in
      let id = List.nth ids (Random.State.int st (List.length ids)) in
      Alcotest.(check bool) (Printf.sprintf "delete %d" id) true (T2.delete t id);
      Hashtbl.remove model id
    end;
    if step mod 9 = 0 then verify step
  done;
  verify ops;
  Hashtbl.iter
    (fun id text ->
      Alcotest.(check (option string)) (Printf.sprintf "extract %d" id) (Some text)
        (T2.extract t ~doc:id ~off:0 ~len:(String.length text)))
    model;
  check "doc_count" (Hashtbl.length model) (T2.doc_count t)

let test_churn_small = churn ~ops:150 ~seed:5 ~max_len:30
let test_churn_bigger_docs = churn ~ops:80 ~seed:6 ~max_len:200

let test_delete_everything () =
  let t = T2.create ~sample:2 ~tau:4 () in
  let ids = List.init 80 (fun i -> T2.insert t (Printf.sprintf "erase me %d" i)) in
  List.iter (fun id -> Alcotest.(check bool) "del" true (T2.delete t id)) ids;
  check "empty" 0 (T2.doc_count t);
  check "no matches" 0 (T2.count t "erase")

let test_census_shape () =
  let t = T2.create ~sample:4 ~tau:4 () in
  for i = 0 to 499 do
    ignore (T2.insert t (Printf.sprintf "census doc %d with padding" i))
  done;
  let census = T2.census t in
  (* C0 always reported; total live symbols must match *)
  Alcotest.(check bool) "has C0" true (List.exists (fun (n, _, _) -> n = "C0") census);
  let live_total = List.fold_left (fun a (_, l, _) -> a + l) 0 census in
  check "census live total" (T2.total_symbols t) live_total

let prop_t2_vs_model =
  QCheck.Test.make ~name:"transform2 agrees with model on random streams" ~count:100
    QCheck.(pair (int_bound 1000) (int_range 30 70))
    (fun (seed, ops) ->
      let st = Random.State.make [| seed; 99 |] in
      let t = T2.create ~sample:2 ~tau:4 ~work_factor:2 () in
      let model = Hashtbl.create 32 in
      for _ = 1 to ops do
        if Random.State.float st 1.0 < 0.65 || Hashtbl.length model = 0 then begin
          let text = rand_doc st 40 in
          let id = T2.insert t text in
          Hashtbl.replace model id text
        end
        else begin
          let ids = Hashtbl.fold (fun d _ acc -> d :: acc) model [] in
          let id = List.nth ids (Random.State.int st (List.length ids)) in
          ignore (T2.delete t id);
          Hashtbl.remove model id
        end
      done;
      let live = Hashtbl.fold (fun d s acc -> (d, s) :: acc) model [] in
      List.for_all (fun p -> T2.matches t p = naive_search live p) [ "a"; "ab"; "ba"; "ca" ])

(* longer soak: 2500 mixed ops with sparse verification -- exercises many
   lock/install cycles, top cleanings and at least one restructure *)
let test_soak () =
  let st = Random.State.make [| 2025 |] in
  let t = T2.create ~sample:4 ~tau:8 ~work_factor:32 () in
  let model = Hashtbl.create 256 in
  for step = 1 to 2500 do
    if Random.State.float st 1.0 < 0.62 || Hashtbl.length model = 0 then begin
      let text = rand_doc st 120 in
      let id = T2.insert t text in
      Hashtbl.replace model id text
    end
    else begin
      let ids = Hashtbl.fold (fun d _ acc -> d :: acc) model [] in
      let id = List.nth ids (Random.State.int st (List.length ids)) in
      ignore (T2.delete t id);
      Hashtbl.remove model id
    end;
    if step mod 250 = 0 then begin
      let live = Hashtbl.fold (fun d s acc -> (d, s) :: acc) model [] in
      List.iter
        (fun p ->
          check (Printf.sprintf "soak %d count %s" step p)
            (List.length (naive_search live p))
            (T2.count t p))
        [ "ab"; "ca" ]
    end
  done;
  check "soak doc_count" (Hashtbl.length model) (T2.doc_count t);
  let s = T2.stats t in
  Alcotest.(check bool) "soak exercised jobs" true (s.Transform2.jobs_completed > 20);
  Alcotest.(check bool) "soak exercised cleaning" true (s.Transform2.top_cleanings > 0)

(* Forced completions must be accounted exactly once each and feed
   max_job_step: with a starvation-level work budget nearly every lock
   forces its job synchronously. *)
let test_forced_accounting () =
  let t = T2.create ~sample:2 ~tau:4 ~work_factor:1 () in
  let i = ref 0 in
  while (T2.stats t).Transform2.forced = 0 && !i < 2000 do
    ignore (T2.insert t (Printf.sprintf "forced accounting doc %d with some filler" !i));
    incr i
  done;
  let s = T2.stats t in
  Alcotest.(check bool) "a force occurred" true (s.Transform2.forced > 0);
  Alcotest.(check bool) "max_job_step recorded" true (s.Transform2.max_job_step > 0);
  Alcotest.(check bool) "forced counted once per completion" true
    (s.Transform2.forced <= s.Transform2.jobs_completed);
  Alcotest.(check bool) "completions bounded by starts" true
    (s.Transform2.jobs_completed <= s.Transform2.jobs_started)

(* A failed delete (unknown or already-deleted id) must not mutate any
   counter or structure state. *)
let test_failed_delete_no_mutation () =
  let t = T2.create ~sample:2 ~tau:4 () in
  let ids = List.init 30 (fun i -> T2.insert t (Printf.sprintf "hold doc %d" i)) in
  let victim = List.nth ids 3 in
  Alcotest.(check bool) "first delete" true (T2.delete t victim);
  let s0 = T2.stats t and d0 = T2.doc_count t and y0 = T2.total_symbols t in
  Alcotest.(check bool) "double delete" false (T2.delete t victim);
  Alcotest.(check bool) "unknown delete" false (T2.delete t 424242);
  let s1 = T2.stats t in
  check "doc_count unchanged" d0 (T2.doc_count t);
  check "symbols unchanged" y0 (T2.total_symbols t);
  Alcotest.(check bool) "stats unchanged" true (s0 = s1);
  check "count intact" 29 (T2.count t "hold doc")

(* Regression: a document that currently lives in a locked copy L_j
   (its rebuild job still in flight) must remain fully extractable. *)
let test_extract_from_locked_copy () =
  let t = T2.create ~sample:2 ~tau:4 ~work_factor:1 () in
  let model = Hashtbl.create 64 in
  let checked_mid_rebuild = ref 0 in
  for i = 0 to 249 do
    let text = Printf.sprintf "locked copy probe %d with padding text" i in
    let id = T2.insert t text in
    Hashtbl.replace model id text;
    let locked_live =
      List.exists (fun (n, _, _) -> String.length n > 0 && n.[0] = 'L') (T2.census t)
    in
    if locked_live && i mod 10 = 0 then begin
      incr checked_mid_rebuild;
      Hashtbl.iter
        (fun id text ->
          Alcotest.(check (option string))
            (Printf.sprintf "extract %d mid-rebuild" id)
            (Some text)
            (T2.extract t ~doc:id ~off:0 ~len:(String.length text));
          Alcotest.(check (option string))
            (Printf.sprintf "extract %d tail mid-rebuild" id)
            (Some (String.sub text 7 8))
            (T2.extract t ~doc:id ~off:7 ~len:8))
        model
    end
  done;
  Alcotest.(check bool) "locked copies were actually observed" true (!checked_mid_rebuild > 0)

let qsuite = List.map Qc.to_alcotest [ prop_t2_vs_model ]

let suite =
  [ ("insert & search", `Quick, test_insert_search);
    ("background jobs run", `Quick, test_background_jobs_run);
    ("oversized doc becomes top", `Quick, test_oversized_doc_becomes_top);
    ("deletes with pending jobs", `Quick, test_delete_with_pending_jobs);
    ("churn small docs", `Quick, test_churn_small);
    ("churn bigger docs", `Quick, test_churn_bigger_docs);
    ("delete everything", `Quick, test_delete_everything);
    ("census shape", `Quick, test_census_shape);
    ("forced-completion accounting", `Quick, test_forced_accounting);
    ("failed delete mutates nothing", `Quick, test_failed_delete_no_mutation);
    ("extract from locked copy mid-rebuild", `Quick, test_extract_from_locked_copy);
    ("soak 2500 ops", `Slow, test_soak) ]
  @ qsuite
