(* Tests for dsdg_fm: backward search, locate, extract, suffix rows. *)

open Dsdg_fm

let check = Alcotest.(check int)

(* Naive occurrence finder: all (doc, off) with docs.(doc).[off ..] starting
   with p. *)
let naive_search (docs : string array) (p : string) : (int * int) list =
  let res = ref [] in
  let pl = String.length p in
  Array.iteri
    (fun d str ->
      let n = String.length str in
      for off = 0 to n - pl do
        if String.sub str off pl = p then res := (d, off) :: !res
      done)
    docs;
  List.sort compare !res

let fm_search fm p =
  let res = ref [] in
  Fm_index.search fm p ~f:(fun ~doc ~off -> res := (doc, off) :: !res);
  List.sort compare !res

let check_matches msg docs fm p =
  Alcotest.(check (list (pair int int))) msg (naive_search docs p) (fm_search fm p)

let test_basic () =
  let docs = [| "banana"; "bandana"; "ananas" |] in
  let fm = Fm_index.build ~sample:2 docs in
  check "doc_count" 3 (Fm_index.doc_count fm);
  check "total_len" (7 + 8 + 7) (Fm_index.total_len fm);
  check "count ana" 5 (Fm_index.count fm "ana");
  check "count an" 6 (Fm_index.count fm "an");
  check "count zzz" 0 (Fm_index.count fm "zzz");
  List.iter (fun p -> check_matches p docs fm p)
    [ "a"; "an"; "ana"; "anan"; "banana"; "bandana"; "ananas"; "n"; "s"; "x"; "nd" ]

let test_single_doc () =
  let docs = [| "mississippi" |] in
  let fm = Fm_index.build ~sample:3 docs in
  List.iter (fun p -> check_matches p docs fm p)
    [ "i"; "s"; "ss"; "ssi"; "issi"; "mississippi"; "p"; "pi"; "m"; "q" ]

let test_empty_and_tiny_docs () =
  let docs = [| ""; "a"; ""; "ab"; "b" |] in
  let fm = Fm_index.build ~sample:1 docs in
  check "count a" 2 (Fm_index.count fm "a");
  check "count b" 2 (Fm_index.count fm "b");
  check "count ab" 1 (Fm_index.count fm "ab");
  List.iter (fun p -> check_matches p docs fm p) [ "a"; "b"; "ab"; "ba" ]

let test_no_cross_boundary_matches () =
  (* "ab" at the end of doc 0 and "ba" split across docs must not match *)
  let docs = [| "xxab"; "baxx" |] in
  let fm = Fm_index.build ~sample:2 docs in
  check "abba" 0 (Fm_index.count fm "abba");
  check "ab" 1 (Fm_index.count fm "ab");
  check "ba" 1 (Fm_index.count fm "ba")

let test_extract () =
  let docs = [| "the quick brown fox"; "jumps over"; "the lazy dog" |] in
  let fm = Fm_index.build ~sample:4 docs in
  Alcotest.(check string) "full doc" "the quick brown fox" (Fm_index.extract fm ~doc:0 ~off:0 ~len:19);
  Alcotest.(check string) "mid" "quick" (Fm_index.extract fm ~doc:0 ~off:4 ~len:5);
  Alcotest.(check string) "doc1" "over" (Fm_index.extract fm ~doc:1 ~off:6 ~len:4);
  Alcotest.(check string) "doc2 end" "dog" (Fm_index.extract fm ~doc:2 ~off:9 ~len:3);
  Alcotest.(check string) "empty" "" (Fm_index.extract fm ~doc:1 ~off:3 ~len:0);
  Alcotest.check_raises "past end" (Invalid_argument "Fm_index.extract: out of document")
    (fun () -> ignore (Fm_index.extract fm ~doc:2 ~off:9 ~len:4))

let test_suffix_row_roundtrip () =
  let docs = [| "abracadabra"; "cadabra" |] in
  let fm = Fm_index.build ~sample:3 docs in
  for d = 0 to 1 do
    for off = 0 to Fm_index.doc_len fm d - 1 do
      let row = Fm_index.suffix_row fm ~doc:d ~off in
      let d', off' = Fm_index.locate fm row in
      check (Printf.sprintf "doc %d off %d" d off) d d';
      check (Printf.sprintf "off %d.%d" d off) off off'
    done
  done

let test_iter_doc_rows () =
  let docs = [| "abcab"; "cabba" |] in
  let fm = Fm_index.build ~sample:2 docs in
  for d = 0 to 1 do
    let rows = ref [] in
    Fm_index.iter_doc_rows fm d ~f:(fun r -> rows := r :: !rows);
    (* one row per suffix incl. separator; all distinct; they locate to d *)
    let l = Fm_index.doc_len fm d in
    check (Printf.sprintf "row count doc %d" d) (l + 1) (List.length !rows);
    let sorted = List.sort_uniq compare !rows in
    check "distinct" (l + 1) (List.length sorted)
  done

let test_sample_rates () =
  let docs = [| "the rain in spain stays mainly in the plain" |] in
  List.iter
    (fun s ->
      let fm = Fm_index.build ~sample:s docs in
      check_matches (Printf.sprintf "ain s=%d" s) docs fm "ain";
      check_matches (Printf.sprintf "in s=%d" s) docs fm "in";
      Alcotest.(check string) "extract" "spain"
        (Fm_index.extract fm ~doc:0 ~off:12 ~len:5))
    [ 1; 2; 3; 5; 8; 64 ]

let test_space_decreases_with_sample () =
  let doc = String.concat " " (List.init 200 (fun i -> Printf.sprintf "word%d token" i)) in
  let s1 = Fm_index.space_bits (Fm_index.build ~sample:1 [| doc |]) in
  let s16 = Fm_index.space_bits (Fm_index.build ~sample:16 [| doc |]) in
  Alcotest.(check bool) (Printf.sprintf "s=16 (%d) < s=1 (%d)" s16 s1) true (s16 < s1)

let gen_docs =
  (* small alphabet to force many repeats / matches *)
  let gen_doc = QCheck.Gen.(string_size ~gen:(map (fun i -> Char.chr (97 + i)) (int_bound 2)) (0 -- 40)) in
  QCheck.Gen.(list_size (1 -- 6) gen_doc)

let arb_docs = QCheck.make ~print:(fun l -> String.concat "|" l) gen_docs

let prop_search_matches_naive =
  QCheck.Test.make ~name:"fm search = naive search" ~count:150
    QCheck.(pair arb_docs (string_of_size Gen.(1 -- 5)))
    (fun (docs_l, p_raw) ->
      QCheck.assume (String.length p_raw > 0);
      let p = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) p_raw in
      let docs = Array.of_list docs_l in
      let fm = Fm_index.build ~sample:3 docs in
      fm_search fm p = naive_search docs p)

let prop_extract_roundtrip =
  QCheck.Test.make ~name:"fm extract recovers documents" ~count:100 arb_docs
    (fun docs_l ->
      let docs = Array.of_list docs_l in
      let fm = Fm_index.build ~sample:4 docs in
      let ok = ref true in
      Array.iteri
        (fun d str ->
          if Fm_index.extract fm ~doc:d ~off:0 ~len:(String.length str) <> str then ok := false)
        docs;
      !ok)

let prop_count_equals_range_width =
  QCheck.Test.make ~name:"fm count = |range|" ~count:100
    QCheck.(pair arb_docs (string_of_size Gen.(1 -- 4)))
    (fun (docs_l, p_raw) ->
      QCheck.assume (String.length p_raw > 0);
      let p = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) p_raw in
      let docs = Array.of_list docs_l in
      let fm = Fm_index.build ~sample:2 docs in
      let c = Fm_index.count fm p in
      match Fm_index.range fm p with
      | None -> c = 0
      | Some (sp, ep) -> c = ep - sp && c > 0)

let qsuite =
  List.map Qc.to_alcotest
    [ prop_search_matches_naive; prop_extract_roundtrip; prop_count_equals_range_width ]

let suite =
  [ ("basic multi-doc", `Quick, test_basic);
    ("single doc", `Quick, test_single_doc);
    ("empty and tiny docs", `Quick, test_empty_and_tiny_docs);
    ("no cross-boundary matches", `Quick, test_no_cross_boundary_matches);
    ("extract", `Quick, test_extract);
    ("suffix_row/locate roundtrip", `Quick, test_suffix_row_roundtrip);
    ("iter_doc_rows", `Quick, test_iter_doc_rows);
    ("sample rates", `Quick, test_sample_rates);
    ("space decreases with sample", `Quick, test_space_decreases_with_sample) ]
  @ qsuite
