(* Tests for dsdg_workload: determinism, value ranges, planted patterns. *)

open Dsdg_workload

let check = Alcotest.(check int)

let test_deterministic () =
  let a = Text_gen.uniform (Text_gen.rng 1) ~sigma:4 ~len:100 in
  let b = Text_gen.uniform (Text_gen.rng 1) ~sigma:4 ~len:100 in
  Alcotest.(check string) "same seed same text" a b;
  let c = Text_gen.uniform (Text_gen.rng 2) ~sigma:4 ~len:100 in
  Alcotest.(check bool) "different seed different text" true (a <> c)

let test_uniform_alphabet () =
  let s = Text_gen.uniform (Text_gen.rng 3) ~sigma:3 ~len:2000 in
  String.iter (fun ch -> Alcotest.(check bool) "in range" true (ch >= 'a' && ch <= 'c')) s;
  check "len" 2000 (String.length s)

let test_markov_lowers_entropy () =
  let open Dsdg_entropy in
  let st = Text_gen.rng 4 in
  let skewed = Text_gen.markov st ~sigma:8 ~len:20000 ~skew:0.9 in
  let h0 = Entropy.h0 skewed and h1 = Entropy.hk ~k:1 skewed in
  Alcotest.(check bool)
    (Printf.sprintf "H1 (%.3f) well below H0 (%.3f)" h1 h0)
    true
    (h1 < 0.7 *. h0)

let test_zipf_bounds () =
  let st = Text_gen.rng 5 in
  let ls = Text_gen.zipf_lengths st ~count:1000 ~max_len:500 in
  Array.iter (fun l -> Alcotest.(check bool) "in [1,500]" true (l >= 1 && l <= 500)) ls;
  (* heavy head: small values dominate *)
  let small = Array.fold_left (fun a l -> if l <= 50 then a + 1 else a) 0 ls in
  Alcotest.(check bool) (Printf.sprintf "%d/1000 small" small) true (small > 400)

let test_zipf_edge_cases () =
  let st = Text_gen.rng 7 in
  (* max < 1 is an empty value range *)
  Alcotest.check_raises "max=0 raises"
    (Invalid_argument "Text_gen.zipf: max < 1 (the value range [1, max] is empty)") (fun () ->
      ignore (Text_gen.zipf st ~max:0));
  Alcotest.check_raises "max=-3 raises"
    (Invalid_argument "Text_gen.zipf: max < 1 (the value range [1, max] is empty)") (fun () ->
      ignore (Text_gen.zipf st ~max:(-3)));
  (* max = 1: the only value, no float path involved *)
  for _ = 1 to 100 do
    Alcotest.(check int) "max=1 is 1" 1 (Text_gen.zipf st ~max:1)
  done;
  (* huge max: exp(u * log max) can overflow the int conversion; the
     draw must still land in [1, max] *)
  for _ = 1 to 1000 do
    let v = Text_gen.zipf st ~max:max_int in
    Alcotest.(check bool) "huge max in range" true (v >= 1 && v <= max_int)
  done;
  (* count validation and the count=0 corner *)
  Alcotest.check_raises "count=-1 raises" (Invalid_argument "Text_gen.zipf_lengths: count < 0")
    (fun () -> ignore (Text_gen.zipf_lengths st ~count:(-1) ~max_len:10));
  Alcotest.(check int) "count=0 empty" 0 (Array.length (Text_gen.zipf_lengths st ~count:0 ~max_len:10));
  (* zipf_lengths propagates the range check *)
  match Text_gen.zipf_lengths st ~count:3 ~max_len:0 with
  | _ -> Alcotest.fail "max_len=0 accepted"
  | exception Invalid_argument _ -> ()

let test_url_log_shape () =
  let urls = Text_gen.url_log (Text_gen.rng 6) ~count:50 in
  check "count" 50 (Array.length urls);
  Array.iter
    (fun u ->
      Alcotest.(check bool) ("https prefix: " ^ u) true
        (String.length u > 12 && String.sub u 0 12 = "https://www."))
    urls

let test_planted_pattern_occurs () =
  let st = Text_gen.rng 7 in
  let docs = Text_gen.corpus st ~count:20 ~avg_len:100 ~kind:(`Uniform 4) in
  for _ = 1 to 30 do
    match Text_gen.planted_pattern st docs ~len:5 with
    | None -> Alcotest.fail "no pattern found"
    | Some p ->
      let occurs =
        Array.exists
          (fun d ->
            let found = ref false in
            for off = 0 to String.length d - 5 do
              if String.sub d off 5 = p then found := true
            done;
            !found)
          docs
      in
      Alcotest.(check bool) ("planted occurs: " ^ p) true occurs
  done

let test_graph_gen () =
  let st = Random.State.make [| 8 |] in
  let edges = Graph_gen.erdos_renyi st ~nodes:100 ~edges:300 in
  check "edge count" 300 (Array.length edges);
  let seen = Hashtbl.create 300 in
  Array.iter
    (fun (u, v) ->
      Alcotest.(check bool) "nodes in range" true (u >= 0 && u < 100 && v >= 0 && v < 100);
      Alcotest.(check bool) "no dup" false (Hashtbl.mem seen (u, v));
      Hashtbl.replace seen (u, v) ())
    edges;
  let pref = Graph_gen.preferential st ~nodes:200 ~out_deg:4 in
  Alcotest.(check bool) "pref nonempty" true (Array.length pref > 200)

(* web_crawl must deliver the full edge count even when the per-page
   out-degree (edges/nodes) is high -- the regression here was the
   target universe collapsing to the crawl frontier, starving the
   stream at a handful of edges. *)
let test_web_crawl () =
  let st = Random.State.make [| 11 |] in
  let nodes = 500 and edges = 5000 in
  let stream = Graph_gen.web_crawl st ~nodes ~edges in
  check "full edge count" edges (Array.length stream);
  let seen = Hashtbl.create edges in
  let in_deg = Array.make nodes 0 in
  Array.iter
    (fun (u, v) ->
      Alcotest.(check bool) "endpoints in range" true (u >= 0 && u < nodes && v >= 0 && v < nodes);
      Alcotest.(check bool) "no dup" false (Hashtbl.mem seen (u, v));
      Hashtbl.replace seen (u, v) ();
      in_deg.(v) <- in_deg.(v) + 1)
    stream;
  (* skew: the most popular page collects far more than the mean in-degree *)
  let top = Array.fold_left max 0 in_deg in
  Alcotest.(check bool) "in-degrees are skewed" true (top > 5 * (edges / nodes));
  (* query generators draw from the stream *)
  let nq = Graph_gen.neighbor_queries st ~edges:stream ~count:64 in
  check "neighbor query count" 64 (Array.length nq);
  let bs = Graph_gen.bfs_sources st ~edges:stream ~count:16 in
  check "bfs source count" 16 (Array.length bs);
  Array.iter (fun u -> Alcotest.(check bool) "query in range" true (u >= 0 && u < nodes)) nq;
  Alcotest.check_raises "tiny universe rejected"
    (Invalid_argument "Graph_gen.web_crawl: nodes < 2") (fun () ->
      ignore (Graph_gen.web_crawl st ~nodes:1 ~edges:5))

let test_query_stream_mix () =
  let st = Random.State.make [| 9 |] in
  let ops =
    Query_gen.stream st ~mix:Query_gen.default_mix ~ops:2000
      ~doc_gen:(fun () -> "doc")
      ~pattern_gen:(fun () -> "p")
  in
  check "length" 2000 (List.length ops);
  let ins = List.length (List.filter (function Query_gen.Insert _ -> true | _ -> false) ops) in
  Alcotest.(check bool) (Printf.sprintf "inserts ~40%% (%d)" ins) true (ins > 600 && ins < 1000)

let prop_corpus_sizes =
  QCheck.Test.make ~name:"corpus respects count and nonempty docs" ~count:50
    QCheck.(pair (int_range 1 30) (int_range 5 200))
    (fun (count, avg_len) ->
      let st = Text_gen.rng (count * 1000 + avg_len) in
      let docs = Text_gen.corpus st ~count ~avg_len ~kind:(`Uniform 4) in
      Array.length docs = count && Array.for_all (fun d -> String.length d >= 1) docs)

let qsuite = List.map Qc.to_alcotest [ prop_corpus_sizes ]

let suite =
  [ ("deterministic", `Quick, test_deterministic);
    ("uniform alphabet", `Quick, test_uniform_alphabet);
    ("markov lowers entropy", `Quick, test_markov_lowers_entropy);
    ("zipf bounds", `Quick, test_zipf_bounds);
    ("zipf edge cases", `Quick, test_zipf_edge_cases);
    ("url log shape", `Quick, test_url_log_shape);
    ("planted pattern occurs", `Quick, test_planted_pattern_occurs);
    ("graph generators", `Quick, test_graph_gen);
    ("web crawl stream", `Quick, test_web_crawl);
    ("query stream mix", `Quick, test_query_stream_mix) ]
  @ qsuite
