(* Tests for the RRR H0-compressed bit vector. *)

open Dsdg_bits

let check = Alcotest.(check int)

let naive_rank1 bools i =
  let acc = ref 0 in
  List.iteri (fun j x -> if j < i && x then incr acc) bools;
  !acc

let naive_select bools which k =
  let rec go j seen = function
    | [] -> raise Not_found
    | x :: rest ->
      if x = which then if seen = k then j else go (j + 1) (seen + 1) rest
      else go (j + 1) seen rest
  in
  go 0 0 bools

let battery bools name =
  let n = List.length bools in
  let rrr = Rrr.of_bitvec (Bitvec.of_bools bools) in
  check (name ^ " length") n (Rrr.length rrr);
  check (name ^ " ones") (naive_rank1 bools n) (Rrr.ones rrr);
  for i = 0 to n do
    check (Printf.sprintf "%s rank1 %d" name i) (naive_rank1 bools i) (Rrr.rank1 rrr i)
  done;
  List.iteri
    (fun i x -> Alcotest.(check bool) (Printf.sprintf "%s get %d" name i) x (Rrr.get rrr i))
    bools;
  for k = 0 to Rrr.ones rrr - 1 do
    check (Printf.sprintf "%s select1 %d" name k) (naive_select bools true k) (Rrr.select1 rrr k)
  done;
  for k = 0 to Rrr.zeros rrr - 1 do
    check (Printf.sprintf "%s select0 %d" name k) (naive_select bools false k) (Rrr.select0 rrr k)
  done

let test_small_patterns () =
  battery [ true ] "one";
  battery [ false ] "zero";
  battery [ true; false; true; true; false ] "tiny";
  battery (List.init 64 (fun i -> i mod 3 = 0)) "mod3";
  battery (List.init 200 (fun _ -> true)) "all ones";
  battery (List.init 200 (fun _ -> false)) "all zeros"

let test_block_boundaries () =
  (* lengths around the 15-bit block and 32-block superblock boundaries *)
  List.iter
    (fun n -> battery (List.init n (fun i -> i mod 7 < 2)) (Printf.sprintf "n=%d" n))
    [ 14; 15; 16; 449; 450; 451; 480; 481 ]

let test_compression_on_sparse () =
  let n = 100_000 in
  let bv = Bitvec.create n in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to n / 100 do
    Bitvec.set bv (Random.State.int st n)
  done;
  let rrr = Rrr.of_bitvec bv in
  let plain = Rank_select.space_bits (Rank_select.build bv) in
  let packed = Rrr.space_bits rrr in
  Alcotest.(check bool)
    (Printf.sprintf "rrr (%d) < 50%% of plain (%d) on 1%% density" packed plain)
    true
    (float_of_int packed < 0.5 *. float_of_int plain)

let prop_rrr_vs_naive =
  QCheck.Test.make ~name:"rrr matches naive rank/select" ~count:150
    QCheck.(list_of_size Gen.(1 -- 400) bool)
    (fun bools ->
      let n = List.length bools in
      let rrr = Rrr.of_bitvec (Bitvec.of_bools bools) in
      let ok = ref true in
      for i = 0 to n do
        if Rrr.rank1 rrr i <> naive_rank1 bools i then ok := false
      done;
      for k = 0 to Rrr.ones rrr - 1 do
        if Rrr.select1 rrr k <> naive_select bools true k then ok := false
      done;
      for k = 0 to Rrr.zeros rrr - 1 do
        if Rrr.select0 rrr k <> naive_select bools false k then ok := false
      done;
      !ok)

let prop_rrr_matches_rank_select =
  QCheck.Test.make ~name:"rrr agrees with plain Rank_select" ~count:100
    QCheck.(pair (int_range 1 2000) (int_range 1 99))
    (fun (n, density) ->
      let st = Random.State.make [| n; density |] in
      let bv = Bitvec.init n (fun _ -> Random.State.int st 100 < density) in
      let rrr = Rrr.of_bitvec bv in
      let rs = Rank_select.build bv in
      let ok = ref true in
      for i = 0 to n do
        if Rrr.rank1 rrr i <> Rank_select.rank1 rs i then ok := false
      done;
      !ok)

let qsuite = List.map Qc.to_alcotest [ prop_rrr_vs_naive; prop_rrr_matches_rank_select ]

let suite =
  [ ("small patterns", `Quick, test_small_patterns);
    ("block boundaries", `Quick, test_block_boundaries);
    ("compression on sparse", `Quick, test_compression_on_sparse) ]
  @ qsuite
