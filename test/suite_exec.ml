(* Unit tests for the domain-pool executor (lib/exec) and for the
   Incremental lifecycle contract the pooled rebuild path of
   Transformation 2 depends on: finalizers run exactly once on abandon,
   work accounting is monotone, and a cancelled job can never be
   resumed. *)

open Dsdg_exec

(* A one-shot latch a job can block on; Mutex/Condition so the worker
   domain really sleeps (the test box may have a single core). *)
let latch () =
  let mu = Mutex.create () and cv = Condition.create () and opened = ref false in
  let wait () =
    Mutex.lock mu;
    while not !opened do
      Condition.wait cv mu
    done;
    Mutex.unlock mu
  and release () =
    Mutex.lock mu;
    opened := true;
    Condition.broadcast cv;
    Mutex.unlock mu
  in
  (wait, release)

(* Spin until the single worker has pulled the blocker off the queue, so
   the next submit is guaranteed to sit in the queue behind it. *)
let wait_queue_empty p =
  while Executor.pending p > 0 do
    Domain.cpu_relax ()
  done

let test_sync_inline () =
  let p = Executor.create ~workers:0 () in
  Alcotest.(check bool) "mode is Sync" true (Executor.mode p = `Sync);
  Alcotest.(check int) "no worker domains" 0 (Executor.workers p);
  let ran = ref false in
  let h =
    Executor.submit p ~name:"sync" (fun tick ->
        tick ();
        ran := true;
        41 + 1)
  in
  Alcotest.(check bool) "ran inline before submit returned" true !ran;
  (match Executor.poll p h with
  | `Done 42 -> ()
  | _ -> Alcotest.fail "Sync submit must be terminal immediately");
  Alcotest.(check int) "work_spent counts ticks" 1 (Executor.work_spent h);
  Executor.shutdown p

let test_pool_roundtrip () =
  let p = Executor.create ~workers:2 () in
  Alcotest.(check bool) "mode is Pool" true (Executor.mode p = `Pool 2);
  let hs = List.init 8 (fun i -> Executor.submit p ~name:(Printf.sprintf "job %d" i) (fun tick -> tick (); i * i)) in
  List.iteri
    (fun i h ->
      match Executor.await p h with
      | `Done v -> Alcotest.(check int) (Printf.sprintf "result %d" i) (i * i) v
      | `Failed e -> Alcotest.failf "job %d failed: %s" i (Printexc.to_string e)
      | `Cancelled -> Alcotest.failf "job %d cancelled" i)
    hs;
  Executor.shutdown p

(* await on a job still in the queue must steal it and run it on the
   caller (the paper's synchronous forced completion), not wait for the
   busy worker. *)
let test_await_steals_queued () =
  let p = Executor.create ~workers:1 () in
  let wait, release = latch () in
  let blocker = Executor.submit p ~name:"blocker" (fun _tick -> wait (); 0) in
  wait_queue_empty p;
  let me = Domain.self () in
  let queued = Executor.submit p ~name:"queued" (fun tick -> tick (); Domain.self ()) in
  (match Executor.await p queued with
  | `Done d -> Alcotest.(check bool) "stolen job ran on the caller" true (d = me)
  | _ -> Alcotest.fail "queued job did not complete");
  release ();
  (match Executor.await p blocker with
  | `Done 0 -> ()
  | _ -> Alcotest.fail "blocker did not finish");
  Executor.shutdown p

let test_cancel_queued_never_runs () =
  let p = Executor.create ~workers:1 () in
  let wait, release = latch () in
  let blocker = Executor.submit p ~name:"blocker" (fun _tick -> wait ()) in
  wait_queue_empty p;
  let ran = Atomic.make false in
  let doomed = Executor.submit p ~name:"doomed" (fun _tick -> Atomic.set ran true) in
  Executor.cancel p doomed;
  (match Executor.poll p doomed with
  | `Cancelled -> ()
  | _ -> Alcotest.fail "cancelling a queued job must be immediate");
  release ();
  (match Executor.await p blocker with
  | `Done () -> ()
  | _ -> Alcotest.fail "blocker did not finish");
  Alcotest.(check bool) "cancelled job never ran" false (Atomic.get ran);
  Executor.shutdown p

let test_cancel_running_at_tick () =
  let p = Executor.create ~workers:1 () in
  let started = Atomic.make false in
  let h =
    Executor.submit p ~name:"spinner" (fun tick ->
        Atomic.set started true;
        while true do
          tick ();
          Domain.cpu_relax ()
        done)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Executor.cancel p h;
  (match Executor.await p h with
  | `Cancelled -> ()
  | _ -> Alcotest.fail "running job must observe cancel at its next tick");
  Executor.shutdown p

exception Boom

let test_failure_propagates () =
  let p = Executor.create ~workers:1 () in
  let h = Executor.submit p ~name:"boom" (fun _tick -> raise Boom) in
  (match Executor.await p h with
  | `Failed Boom -> ()
  | `Failed e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected `Failed");
  (match Executor.run p ~name:"boom2" (fun _tick -> raise Boom) with
  | exception Boom -> ()
  | _ -> Alcotest.fail "run must re-raise the job's exception");
  Executor.shutdown p

(* Bounded submission: with the worker busy and the queue full, the next
   submit pays for its job inline instead of growing the queue. *)
let test_queue_overflow_runs_inline () =
  let p = Executor.create ~workers:1 ~queue_cap:1 () in
  let wait, release = latch () in
  let blocker = Executor.submit p ~name:"blocker" (fun _tick -> wait (); 0) in
  wait_queue_empty p;
  let queued = Executor.submit p ~name:"queued" (fun tick -> tick (); 1) in
  Alcotest.(check int) "queue holds exactly one job" 1 (Executor.pending p);
  let ran_inline = ref false in
  let overflow =
    Executor.submit p ~name:"overflow" (fun tick ->
        tick ();
        ran_inline := true;
        2)
  in
  Alcotest.(check bool) "overflow ran inline before submit returned" true !ran_inline;
  (match Executor.poll p overflow with
  | `Done 2 -> ()
  | _ -> Alcotest.fail "overflow job result");
  release ();
  (match Executor.await p queued with `Done 1 -> () | _ -> Alcotest.fail "queued job");
  (match Executor.await p blocker with `Done 0 -> () | _ -> Alcotest.fail "blocker");
  Executor.shutdown p

let test_shutdown_idempotent_then_inline () =
  let p = Executor.create ~workers:2 () in
  let h = Executor.submit p ~name:"before" (fun tick -> tick (); 7) in
  (match Executor.await p h with `Done 7 -> () | _ -> Alcotest.fail "pre-shutdown job");
  Executor.shutdown p;
  Executor.shutdown p;
  let ran = ref false in
  let h2 =
    Executor.submit p ~name:"after" (fun _tick ->
        ran := true;
        8)
  in
  Alcotest.(check bool) "post-shutdown submit runs inline" true !ran;
  match Executor.poll p h2 with
  | `Done 8 -> ()
  | _ -> Alcotest.fail "post-shutdown job result"

let test_work_spent_exact_when_terminal () =
  let p = Executor.create ~workers:1 () in
  let h =
    Executor.submit p ~name:"ticker" (fun tick ->
        for _ = 1 to 17 do
          tick ()
        done)
  in
  (match Executor.await p h with `Done () -> () | _ -> Alcotest.fail "ticker");
  Alcotest.(check int) "work_spent counts every tick" 17 (Executor.work_spent h);
  Executor.shutdown p

(* --- Incremental lifecycle (the cooperative half of the contract) --- *)

module I = Dsdg_incr.Incremental

let test_incr_finalizer_runs_once_on_abandon () =
  let finalized = ref 0 in
  let job =
    I.create (fun tick ->
        Fun.protect
          ~finally:(fun () -> incr finalized)
          (fun () ->
            for _ = 1 to 100 do
              tick ()
            done))
  in
  (match I.step job ~budget:10 with
  | `More -> ()
  | `Done () -> Alcotest.fail "job finished before its budget allowed");
  Alcotest.(check int) "finalizer has not run while paused" 0 !finalized;
  I.abandon job;
  Alcotest.(check int) "finalizer ran exactly once on abandon" 1 !finalized;
  I.abandon job;
  Alcotest.(check int) "second abandon is a no-op" 1 !finalized

let test_incr_work_spent_monotone () =
  let job =
    I.create (fun tick ->
        for _ = 1 to 50 do
          tick ()
        done;
        50)
  in
  Alcotest.(check int) "no work before the first step" 0 (I.work_spent job);
  let last = ref 0 in
  let rec go () =
    match I.step job ~budget:7 with
    | `More ->
      let w = I.work_spent job in
      Alcotest.(check bool) "work_spent is monotone across suspensions" true (w >= !last);
      last := w;
      go ()
    | `Done v ->
      Alcotest.(check int) "result" 50 v;
      Alcotest.(check int) "every tick accounted for" 50 (I.work_spent job)
  in
  go ()

let test_incr_step_after_abandon_raises () =
  let job =
    I.create (fun tick ->
        for _ = 1 to 10 do
          tick ()
        done)
  in
  (match I.step job ~budget:3 with
  | `More -> ()
  | `Done () -> Alcotest.fail "job finished before its budget allowed");
  I.abandon job;
  match I.step job ~budget:1 with
  | exception I.Cancelled -> ()
  | _ -> Alcotest.fail "step after abandon must raise Cancelled"

let suite =
  [ ("sync pool runs inline", `Quick, test_sync_inline);
    ("pooled submit/await round-trip", `Quick, test_pool_roundtrip);
    ("await steals a queued job", `Quick, test_await_steals_queued);
    ("cancel queued job never runs", `Quick, test_cancel_queued_never_runs);
    ("cancel running job at tick", `Quick, test_cancel_running_at_tick);
    ("failure propagates", `Quick, test_failure_propagates);
    ("queue overflow runs inline", `Quick, test_queue_overflow_runs_inline);
    ("shutdown idempotent, then inline", `Quick, test_shutdown_idempotent_then_inline);
    ("work_spent exact when terminal", `Quick, test_work_spent_exact_when_terminal);
    ("incremental: finalizer once on abandon", `Quick, test_incr_finalizer_runs_once_on_abandon);
    ("incremental: work_spent monotone", `Quick, test_incr_work_spent_monotone);
    ("incremental: step after abandon raises", `Quick, test_incr_step_after_abandon_raises) ]
