(* Unit tests for the domain-pool executor (lib/exec) and for the
   Incremental lifecycle contract the pooled rebuild path of
   Transformation 2 depends on: finalizers run exactly once on abandon,
   work accounting is monotone, and a cancelled job can never be
   resumed. *)

open Dsdg_exec

(* A one-shot latch a job can block on; Mutex/Condition so the worker
   domain really sleeps (the test box may have a single core). *)
let latch () =
  let mu = Mutex.create () and cv = Condition.create () and opened = ref false in
  let wait () =
    Mutex.lock mu;
    while not !opened do
      Condition.wait cv mu
    done;
    Mutex.unlock mu
  and release () =
    Mutex.lock mu;
    opened := true;
    Condition.broadcast cv;
    Mutex.unlock mu
  in
  (wait, release)

(* Spin until the single worker has pulled the blocker off the queue, so
   the next submit is guaranteed to sit in the queue behind it. *)
let wait_queue_empty p =
  while Executor.pending p > 0 do
    Domain.cpu_relax ()
  done

let test_sync_inline () =
  let p = Executor.create ~workers:0 () in
  Alcotest.(check bool) "mode is Sync" true (Executor.mode p = `Sync);
  Alcotest.(check int) "no worker domains" 0 (Executor.workers p);
  let ran = ref false in
  let h =
    Executor.submit p ~name:"sync" (fun tick ->
        tick ();
        ran := true;
        41 + 1)
  in
  Alcotest.(check bool) "ran inline before submit returned" true !ran;
  (match Executor.poll p h with
  | `Done 42 -> ()
  | _ -> Alcotest.fail "Sync submit must be terminal immediately");
  Alcotest.(check int) "work_spent counts ticks" 1 (Executor.work_spent h);
  Executor.shutdown p

let test_pool_roundtrip () =
  let p = Executor.create ~workers:2 () in
  Alcotest.(check bool) "mode is Pool" true (Executor.mode p = `Pool 2);
  let hs = List.init 8 (fun i -> Executor.submit p ~name:(Printf.sprintf "job %d" i) (fun tick -> tick (); i * i)) in
  List.iteri
    (fun i h ->
      match Executor.await p h with
      | `Done v -> Alcotest.(check int) (Printf.sprintf "result %d" i) (i * i) v
      | `Failed e -> Alcotest.failf "job %d failed: %s" i (Printexc.to_string e)
      | `Cancelled -> Alcotest.failf "job %d cancelled" i)
    hs;
  Executor.shutdown p

(* await on a job still in the queue must steal it and run it on the
   caller (the paper's synchronous forced completion), not wait for the
   busy worker. *)
let test_await_steals_queued () =
  let p = Executor.create ~workers:1 () in
  let wait, release = latch () in
  let blocker = Executor.submit p ~name:"blocker" (fun _tick -> wait (); 0) in
  wait_queue_empty p;
  let me = Domain.self () in
  let queued = Executor.submit p ~name:"queued" (fun tick -> tick (); Domain.self ()) in
  (match Executor.await p queued with
  | `Done d -> Alcotest.(check bool) "stolen job ran on the caller" true (d = me)
  | _ -> Alcotest.fail "queued job did not complete");
  release ();
  (match Executor.await p blocker with
  | `Done 0 -> ()
  | _ -> Alcotest.fail "blocker did not finish");
  Executor.shutdown p

let test_cancel_queued_never_runs () =
  let p = Executor.create ~workers:1 () in
  let wait, release = latch () in
  let blocker = Executor.submit p ~name:"blocker" (fun _tick -> wait ()) in
  wait_queue_empty p;
  let ran = Atomic.make false in
  let doomed = Executor.submit p ~name:"doomed" (fun _tick -> Atomic.set ran true) in
  Executor.cancel p doomed;
  (match Executor.poll p doomed with
  | `Cancelled -> ()
  | _ -> Alcotest.fail "cancelling a queued job must be immediate");
  release ();
  (match Executor.await p blocker with
  | `Done () -> ()
  | _ -> Alcotest.fail "blocker did not finish");
  Alcotest.(check bool) "cancelled job never ran" false (Atomic.get ran);
  Executor.shutdown p

let test_cancel_running_at_tick () =
  let p = Executor.create ~workers:1 () in
  let started = Atomic.make false in
  let h =
    Executor.submit p ~name:"spinner" (fun tick ->
        Atomic.set started true;
        while true do
          tick ();
          Domain.cpu_relax ()
        done)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Executor.cancel p h;
  (match Executor.await p h with
  | `Cancelled -> ()
  | _ -> Alcotest.fail "running job must observe cancel at its next tick");
  Executor.shutdown p

exception Boom

let test_failure_propagates () =
  let p = Executor.create ~workers:1 () in
  let h = Executor.submit p ~name:"boom" (fun _tick -> raise Boom) in
  (match Executor.await p h with
  | `Failed Boom -> ()
  | `Failed e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected `Failed");
  (match Executor.run p ~name:"boom2" (fun _tick -> raise Boom) with
  | exception Boom -> ()
  | _ -> Alcotest.fail "run must re-raise the job's exception");
  Executor.shutdown p

(* Bounded submission: with the worker busy and the queue full, the next
   submit pays for its job inline instead of growing the queue. *)
let test_queue_overflow_runs_inline () =
  let p = Executor.create ~workers:1 ~queue_cap:1 () in
  let wait, release = latch () in
  let blocker = Executor.submit p ~name:"blocker" (fun _tick -> wait (); 0) in
  wait_queue_empty p;
  let queued = Executor.submit p ~name:"queued" (fun tick -> tick (); 1) in
  Alcotest.(check int) "queue holds exactly one job" 1 (Executor.pending p);
  let ran_inline = ref false in
  let overflow =
    Executor.submit p ~name:"overflow" (fun tick ->
        tick ();
        ran_inline := true;
        2)
  in
  Alcotest.(check bool) "overflow ran inline before submit returned" true !ran_inline;
  (match Executor.poll p overflow with
  | `Done 2 -> ()
  | _ -> Alcotest.fail "overflow job result");
  release ();
  (match Executor.await p queued with `Done 1 -> () | _ -> Alcotest.fail "queued job");
  (match Executor.await p blocker with `Done 0 -> () | _ -> Alcotest.fail "blocker");
  Executor.shutdown p

let test_shutdown_idempotent_then_inline () =
  let p = Executor.create ~workers:2 () in
  let h = Executor.submit p ~name:"before" (fun tick -> tick (); 7) in
  (match Executor.await p h with `Done 7 -> () | _ -> Alcotest.fail "pre-shutdown job");
  Executor.shutdown p;
  Executor.shutdown p;
  let ran = ref false in
  let h2 =
    Executor.submit p ~name:"after" (fun _tick ->
        ran := true;
        8)
  in
  Alcotest.(check bool) "post-shutdown submit runs inline" true !ran;
  match Executor.poll p h2 with
  | `Done 8 -> ()
  | _ -> Alcotest.fail "post-shutdown job result"

(* Shutdown is a drain, not an abort: jobs already queued behind a
   slow one must still complete, and the call must not hang. *)
let test_shutdown_drains_queued_jobs () =
  let p = Executor.create ~workers:1 () in
  let gate = Atomic.make false in
  let slow =
    Executor.submit p ~name:"slow" (fun tick ->
        while not (Atomic.get gate) do
          tick ();
          Thread.yield ()
        done;
        1)
  in
  let queued = List.init 5 (fun i -> Executor.submit p ~name:"queued" (fun _tick -> 10 + i)) in
  Alcotest.(check bool) "jobs pending at shutdown" true (Executor.pending p > 0);
  Atomic.set gate true;
  Executor.shutdown p;
  (match Executor.poll p slow with `Done 1 -> () | _ -> Alcotest.fail "slow job lost");
  List.iteri
    (fun i h ->
      match Executor.poll p h with
      | `Done v -> Alcotest.(check int) "queued job value" (10 + i) v
      | _ -> Alcotest.failf "queued job %d not completed by shutdown" i)
    queued;
  Alcotest.(check int) "nothing pending after drain" 0 (Executor.pending p)

(* Every observation verb keeps a defined meaning on a closed pool. *)
let test_closed_pool_observations () =
  let p = Executor.create ~workers:2 () in
  let h = Executor.submit p ~name:"done" (fun _tick -> 3) in
  (match Executor.await p h with `Done 3 -> () | _ -> Alcotest.fail "job");
  Executor.shutdown p;
  (* terminal handles stay readable *)
  (match Executor.poll p h with `Done 3 -> () | _ -> Alcotest.fail "poll after shutdown");
  (match Executor.await p h with `Done 3 -> () | _ -> Alcotest.fail "await after shutdown");
  (* cancel on a terminal handle is a no-op, not an error *)
  Executor.cancel p h;
  (match Executor.poll p h with `Done 3 -> () | _ -> Alcotest.fail "cancel flipped terminal state");
  (* breathe returns immediately instead of waiting for dead workers *)
  Executor.breathe p ~ticks:1000;
  Alcotest.(check int) "pending is 0" 0 (Executor.pending p);
  (* run falls back inline, like submit *)
  Alcotest.(check int) "run after shutdown" 9 (Executor.run p ~name:"inline" (fun _tick -> 9))

let test_work_spent_exact_when_terminal () =
  let p = Executor.create ~workers:1 () in
  let h =
    Executor.submit p ~name:"ticker" (fun tick ->
        for _ = 1 to 17 do
          tick ()
        done)
  in
  (match Executor.await p h with `Done () -> () | _ -> Alcotest.fail "ticker");
  Alcotest.(check int) "work_spent counts every tick" 17 (Executor.work_spent h);
  Executor.shutdown p

(* --- Incremental lifecycle (the cooperative half of the contract) --- *)

module I = Dsdg_incr.Incremental

let test_incr_finalizer_runs_once_on_abandon () =
  let finalized = ref 0 in
  let job =
    I.create (fun tick ->
        Fun.protect
          ~finally:(fun () -> incr finalized)
          (fun () ->
            for _ = 1 to 100 do
              tick ()
            done))
  in
  (match I.step job ~budget:10 with
  | `More -> ()
  | `Done () -> Alcotest.fail "job finished before its budget allowed");
  Alcotest.(check int) "finalizer has not run while paused" 0 !finalized;
  I.abandon job;
  Alcotest.(check int) "finalizer ran exactly once on abandon" 1 !finalized;
  I.abandon job;
  Alcotest.(check int) "second abandon is a no-op" 1 !finalized

let test_incr_work_spent_monotone () =
  let job =
    I.create (fun tick ->
        for _ = 1 to 50 do
          tick ()
        done;
        50)
  in
  Alcotest.(check int) "no work before the first step" 0 (I.work_spent job);
  let last = ref 0 in
  let rec go () =
    match I.step job ~budget:7 with
    | `More ->
      let w = I.work_spent job in
      Alcotest.(check bool) "work_spent is monotone across suspensions" true (w >= !last);
      last := w;
      go ()
    | `Done v ->
      Alcotest.(check int) "result" 50 v;
      Alcotest.(check int) "every tick accounted for" 50 (I.work_spent job)
  in
  go ()

let test_incr_step_after_abandon_raises () =
  let job =
    I.create (fun tick ->
        for _ = 1 to 10 do
          tick ()
        done)
  in
  (match I.step job ~budget:3 with
  | `More -> ()
  | `Done () -> Alcotest.fail "job finished before its budget allowed");
  I.abandon job;
  match I.step job ~budget:1 with
  | exception I.Cancelled -> ()
  | _ -> Alcotest.fail "step after abandon must raise Cancelled"

(* --- domain-safety of the observability layer --- *)

(* Two domains hammering the same counter / gauge / histogram: every
   increment must land (Atomic cells, not racy int fields). *)
let test_obs_two_domain_hammer () =
  let open Dsdg_obs in
  let scope = Obs.private_scope "test/hammer" in
  let c = Obs.counter scope "hits" in
  let g = Obs.gauge scope "peak" in
  let h = Obs.histogram scope "obs" in
  let n = 20_000 in
  let body base () =
    for i = 1 to n do
      Obs.incr c;
      Obs.set_max g (base + i);
      Obs.observe h (1 + ((base + i) mod 1024))
    done
  in
  let d1 = Domain.spawn (body 0) in
  let d2 = Domain.spawn (body n) in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no lost counter increments" (2 * n) (Obs.value c);
  Alcotest.(check int) "set_max kept the maximum" (2 * n) (Obs.gauge_value g);
  let s = Obs.summarize h in
  Alcotest.(check int) "no lost histogram observations" (2 * n) s.Obs.n

(* --- the read plane under concurrent readers --- *)

(* Single writer applying a precomputed update stream; K raw
   [Domain.spawn] readers continuously fetching the published view.
   With [jobs = 0] every successful update publishes exactly once, so
   the epoch IS the number of applied updates -- each reader checks its
   epochs are monotone and that the view's answers (doc_count, the
   occurrence list of a fixed pattern) equal the precomputed model state
   for that exact epoch.  Any torn or stale snapshot shows up as a
   mismatch. *)
let test_concurrent_readers_per_epoch_oracle () =
  let open Dsdg_core in
  let n_updates = 150 in
  let pat = "abc" in
  (* generate the stream and the per-epoch expected states up front *)
  let text_of id = Printf.sprintf "%04d abcde" id in
  let ops = Array.make n_updates `Nop in
  let expected = Array.make (n_updates + 1) (0, []) in
  let live = ref [] and next_id = ref 0 in
  expected.(0) <- (0, []);
  for i = 0 to n_updates - 1 do
    (match !live with
    | id :: rest when i mod 3 = 2 ->
      ops.(i) <- `Delete id;
      live := rest
    | _ ->
      let id = !next_id in
      incr next_id;
      ops.(i) <- `Insert (text_of id);
      live := id :: !live);
    let matches = List.sort compare (List.map (fun id -> (id, 5)) !live) in
    expected.(i + 1) <- (List.length !live, matches)
  done;
  let idx = Dynamic_index.create ~variant:Worst_case ~backend:Fm ~sample:2 ~tau:4 () in
  let stop = Atomic.make false in
  let reader () =
    let errors = ref [] and last = ref (-1) and seen = ref 0 in
    while not (Atomic.get stop) do
      let v = Dynamic_index.view idx in
      let e = Dynamic_index.view_epoch v in
      incr seen;
      if e < !last then errors := Printf.sprintf "epoch went backwards: %d -> %d" !last e :: !errors;
      last := e;
      if e > n_updates then errors := Printf.sprintf "epoch %d beyond update count" e :: !errors
      else begin
        let exp_docs, exp_matches = expected.(e) in
        let docs = Dynamic_index.view_doc_count v in
        if docs <> exp_docs then
          errors := Printf.sprintf "epoch %d: doc_count %d, expected %d" e docs exp_docs :: !errors;
        let hits = Dynamic_index.view_search v pat in
        if hits <> exp_matches then
          errors := Printf.sprintf "epoch %d: search mismatch (%d hits, expected %d)" e
                      (List.length hits) (List.length exp_matches) :: !errors
      end
    done;
    (!seen, List.rev !errors)
  in
  let readers = List.init 2 (fun _ -> Domain.spawn reader) in
  Array.iter
    (function
      | `Insert text -> ignore (Dynamic_index.insert idx text)
      | `Delete id -> ignore (Dynamic_index.delete idx id)
      | `Nop -> ())
    ops;
  Atomic.set stop true;
  let results = List.map Domain.join readers in
  Dynamic_index.close idx;
  List.iteri
    (fun i (seen, errors) ->
      Alcotest.(check bool) (Printf.sprintf "reader %d sampled views" i) true (seen > 0);
      match errors with
      | [] -> ()
      | e :: _ ->
        Alcotest.failf "reader %d: %d violation(s), first: %s" i (List.length errors) e)
    results;
  (* the writer is quiescent: the final published epoch is the update count *)
  Alcotest.(check int) "final epoch = updates applied" n_updates
    (Dynamic_index.view_epoch (Dynamic_index.view idx))

(* Queries through a reader pool must agree with the write plane (and
   enforce the same API conventions) once the writer is quiescent. *)
let test_reader_pool_query () =
  let open Dsdg_core in
  let idx = Dynamic_index.create ~variant:Worst_case ~backend:Fm ~sample:2 ~tau:4 ~readers:2 () in
  Alcotest.(check int) "pool size" 2 (Dynamic_index.readers idx);
  let ids = List.init 20 (fun i -> Dynamic_index.insert idx (Printf.sprintf "%02d abcde" i)) in
  List.iteri (fun i id -> if i mod 4 = 0 then ignore (Dynamic_index.delete idx id)) ids;
  let direct = Dynamic_index.search idx "abc" in
  let pooled = Dynamic_index.query idx (fun v -> Dynamic_index.view_search v "abc") in
  Alcotest.(check bool) "pooled search = direct search" true (pooled = direct);
  let c = Dynamic_index.query idx (fun v -> Dynamic_index.view_count v "abc") in
  Alcotest.(check int) "pooled count" (List.length direct) c;
  (match Dynamic_index.query idx (fun v -> Dynamic_index.view_extract v ~doc:(List.nth ids 1) ~off:0 ~len:0) with
  | Some "" -> ()
  | _ -> Alcotest.fail "len=0 extract convention must hold on views");
  (match Dynamic_index.query idx (fun v -> Dynamic_index.view_count v "") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pattern must be rejected through the pool");
  Dynamic_index.close idx;
  (* after close the pool is gone; queries fall back inline *)
  let c' = Dynamic_index.query idx (fun v -> Dynamic_index.view_count v "abc") in
  Alcotest.(check int) "post-close query falls back inline" c c'

let suite =
  [ ("sync pool runs inline", `Quick, test_sync_inline);
    ("pooled submit/await round-trip", `Quick, test_pool_roundtrip);
    ("await steals a queued job", `Quick, test_await_steals_queued);
    ("cancel queued job never runs", `Quick, test_cancel_queued_never_runs);
    ("cancel running job at tick", `Quick, test_cancel_running_at_tick);
    ("failure propagates", `Quick, test_failure_propagates);
    ("queue overflow runs inline", `Quick, test_queue_overflow_runs_inline);
    ("shutdown idempotent, then inline", `Quick, test_shutdown_idempotent_then_inline);
    ("shutdown drains queued jobs", `Quick, test_shutdown_drains_queued_jobs);
    ("closed pool: poll/await/cancel/breathe/run defined", `Quick, test_closed_pool_observations);
    ("work_spent exact when terminal", `Quick, test_work_spent_exact_when_terminal);
    ("incremental: finalizer once on abandon", `Quick, test_incr_finalizer_runs_once_on_abandon);
    ("incremental: work_spent monotone", `Quick, test_incr_work_spent_monotone);
    ("incremental: step after abandon raises", `Quick, test_incr_step_after_abandon_raises);
    ("obs: two-domain hammer loses nothing", `Quick, test_obs_two_domain_hammer);
    ("read plane: concurrent readers, per-epoch oracle", `Quick,
     test_concurrent_readers_per_epoch_oracle);
    ("read plane: reader-pool query", `Quick, test_reader_pool_query) ]
