(* Tests for dsdg_gst: Ukkonen generalized suffix tree with document
   insertion/deletion and pattern search. *)

open Dsdg_gst

let check = Alcotest.(check int)

let naive_search (docs : (int * string) list) (p : string) : (int * int) list =
  let res = ref [] in
  let pl = String.length p in
  List.iter
    (fun (d, str) ->
      let n = String.length str in
      for off = 0 to n - pl do
        if String.sub str off pl = p then res := (d, off) :: !res
      done)
    docs;
  List.sort compare !res

let check_matches msg docs gst p =
  Alcotest.(check (list (pair int int))) msg (naive_search docs p)
    (Gsuffix_tree.occurrences gst p)

let test_single_doc () =
  let gst = Gsuffix_tree.create () in
  Gsuffix_tree.insert gst ~doc:0 "banana";
  let docs = [ (0, "banana") ] in
  List.iter (fun p -> check_matches p docs gst p)
    [ "a"; "an"; "ana"; "anan"; "banana"; "na"; "nan"; "x"; "bananaa" ]

let test_multi_doc () =
  let gst = Gsuffix_tree.create () in
  let docs = [ (0, "banana"); (1, "bandana"); (2, "ananas"); (3, "") ] in
  List.iter (fun (d, s) -> Gsuffix_tree.insert gst ~doc:d s) docs;
  check "doc_count" 4 (Gsuffix_tree.doc_count gst);
  List.iter (fun p -> check_matches p docs gst p)
    [ "a"; "an"; "ana"; "band"; "nas"; "s"; "q"; "banana"; "bandana"; "ananas" ]

let test_shared_prefixes () =
  let gst = Gsuffix_tree.create () in
  let docs = List.mapi (fun i s -> (i, s)) [ "abcde"; "abcxy"; "abc"; "ab"; "a" ] in
  List.iter (fun (d, s) -> Gsuffix_tree.insert gst ~doc:d s) docs;
  List.iter (fun p -> check_matches p docs gst p) [ "a"; "ab"; "abc"; "abcd"; "abcx"; "bc"; "c" ]

let test_delete () =
  let gst = Gsuffix_tree.create () in
  Gsuffix_tree.insert gst ~doc:0 "banana";
  Gsuffix_tree.insert gst ~doc:1 "bandana";
  Alcotest.(check bool) "delete 0" true (Gsuffix_tree.delete gst 0);
  Alcotest.(check bool) "delete 0 again" false (Gsuffix_tree.delete gst 0);
  let docs = [ (1, "bandana") ] in
  List.iter (fun p -> check_matches ("after delete " ^ p) docs gst p) [ "an"; "ana"; "ban"; "nd" ];
  check "doc_count" 1 (Gsuffix_tree.doc_count gst);
  (* deleting the other one empties the tree *)
  ignore (Gsuffix_tree.delete gst 1);
  check "empty count" 0 (Gsuffix_tree.count gst "a")

let test_delete_then_rebuild () =
  let gst = Gsuffix_tree.create () in
  for d = 0 to 9 do
    Gsuffix_tree.insert gst ~doc:d (Printf.sprintf "document number %d contents" d)
  done;
  for d = 0 to 7 do
    ignore (Gsuffix_tree.delete gst d)
  done;
  (* rebuild must have been triggered; dead symbols below live *)
  Alcotest.(check bool) "dead <= live" true
    (Gsuffix_tree.dead_symbols gst <= Gsuffix_tree.live_symbols gst);
  let docs = [ (8, "document number 8 contents"); (9, "document number 9 contents") ] in
  List.iter (fun p -> check_matches p docs gst p) [ "document"; "number"; "8"; "9"; "0" ]

let test_reinsert_id_after_delete () =
  let gst = Gsuffix_tree.create () in
  Gsuffix_tree.insert gst ~doc:5 "hello";
  ignore (Gsuffix_tree.delete gst 5);
  Gsuffix_tree.insert gst ~doc:5 "world";
  let docs = [ (5, "world") ] in
  List.iter (fun p -> check_matches p docs gst p) [ "world"; "hello"; "o"; "l" ]

let test_duplicate_insert_rejected () =
  let gst = Gsuffix_tree.create () in
  Gsuffix_tree.insert gst ~doc:1 "abc";
  Alcotest.check_raises "dup" (Invalid_argument "Gsuffix_tree.insert: duplicate doc id")
    (fun () -> Gsuffix_tree.insert gst ~doc:1 "def")

let test_repetitive_doc () =
  let gst = Gsuffix_tree.create () in
  let s = String.concat "" (List.init 30 (fun _ -> "ab")) in
  Gsuffix_tree.insert gst ~doc:0 s;
  check "count ab" 30 (Gsuffix_tree.count gst "ab");
  check "count aba" 29 (Gsuffix_tree.count gst "aba");
  check "count b" 30 (Gsuffix_tree.count gst "b");
  check_matches "abab" [ (0, s) ] gst "abab"

let test_identical_docs () =
  let gst = Gsuffix_tree.create () in
  Gsuffix_tree.insert gst ~doc:0 "same";
  Gsuffix_tree.insert gst ~doc:1 "same";
  Gsuffix_tree.insert gst ~doc:2 "same";
  check "count" 3 (Gsuffix_tree.count gst "same");
  ignore (Gsuffix_tree.delete gst 1);
  check "count after delete" 2 (Gsuffix_tree.count gst "same")

let gen_docs =
  let gen_doc = QCheck.Gen.(string_size ~gen:(map (fun i -> Char.chr (97 + i)) (int_bound 2)) (0 -- 40)) in
  QCheck.Gen.(list_size (1 -- 8) gen_doc)

let arb_docs = QCheck.make ~print:(fun l -> String.concat "|" l) gen_docs

let prop_search_matches_naive =
  QCheck.Test.make ~name:"gst search = naive search" ~count:200
    QCheck.(pair arb_docs (string_of_size Gen.(1 -- 5)))
    (fun (docs_l, p_raw) ->
      QCheck.assume (String.length p_raw > 0);
      let p = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) p_raw in
      let gst = Gsuffix_tree.create () in
      List.iteri (fun d s -> Gsuffix_tree.insert gst ~doc:d s) docs_l;
      let docs = List.mapi (fun d s -> (d, s)) docs_l in
      Gsuffix_tree.occurrences gst p = naive_search docs p)

let prop_search_after_deletes =
  QCheck.Test.make ~name:"gst search correct under churn" ~count:150
    QCheck.(triple arb_docs (list_of_size Gen.(0 -- 8) (int_bound 7)) (string_of_size Gen.(1 -- 4)))
    (fun (docs_l, deletions, p_raw) ->
      QCheck.assume (String.length p_raw > 0);
      let p = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) p_raw in
      let gst = Gsuffix_tree.create () in
      List.iteri (fun d s -> Gsuffix_tree.insert gst ~doc:d s) docs_l;
      let live = Hashtbl.create 8 in
      List.iteri (fun d s -> Hashtbl.replace live d s) docs_l;
      List.iter
        (fun d ->
          if Hashtbl.mem live d then begin
            Hashtbl.remove live d;
            ignore (Gsuffix_tree.delete gst d)
          end)
        deletions;
      let docs = Hashtbl.fold (fun d s acc -> (d, s) :: acc) live [] in
      Gsuffix_tree.occurrences gst p = naive_search docs p)

let prop_count_matches_occurrences =
  QCheck.Test.make ~name:"gst count = |occurrences|" ~count:100
    QCheck.(pair arb_docs (string_of_size Gen.(1 -- 3)))
    (fun (docs_l, p_raw) ->
      QCheck.assume (String.length p_raw > 0);
      let p = String.map (fun c -> Char.chr (97 + (Char.code c mod 3))) p_raw in
      let gst = Gsuffix_tree.create () in
      List.iteri (fun d s -> Gsuffix_tree.insert gst ~doc:d s) docs_l;
      Gsuffix_tree.count gst p = List.length (Gsuffix_tree.occurrences gst p))

let qsuite =
  List.map Qc.to_alcotest
    [ prop_search_matches_naive; prop_search_after_deletes; prop_count_matches_occurrences ]

let suite =
  [ ("single doc", `Quick, test_single_doc);
    ("multi doc", `Quick, test_multi_doc);
    ("shared prefixes", `Quick, test_shared_prefixes);
    ("delete", `Quick, test_delete);
    ("delete then rebuild", `Quick, test_delete_then_rebuild);
    ("reinsert id after delete", `Quick, test_reinsert_id_after_delete);
    ("duplicate insert rejected", `Quick, test_duplicate_insert_rejected);
    ("repetitive doc", `Quick, test_repetitive_doc);
    ("identical docs", `Quick, test_identical_docs) ]
  @ qsuite
