(* Sharded scale-out suite: the Sharded_index collection contract, the
   shard-aware differential fuzz matrix (one stream fanned over K in
   {1, 2, 4} and compared against both the naive model and the K=1
   baseline), durable kill-and-recover and mid-split kill sweeps, and
   parallel-recovery equivalence.

   Budget knobs shared with suite_check: FUZZ_STREAMS, FUZZ_OPS,
   FUZZ_SEED. *)

open Dsdg_shard
module SI = Sharded_index
module Trace = Dsdg_check.Trace
module Model = Dsdg_check.Model
module Store = Dsdg_store

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)

let base_seed = env_int "FUZZ_SEED" 42
let n_streams = env_int "FUZZ_STREAMS" 200
let ops_per_stream = env_int "FUZZ_OPS" 60

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsdg-suite-shard-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Store.Kill_check.reset_dir dir;
  Fun.protect ~finally:(fun () -> Store.Kill_check.reset_dir dir) (fun () -> f dir)

(* --- collection contract --- *)

(* A K=3 collection must behave exactly like the model: sequential
   global ids, global-id answers, point-wise routing. *)
let test_collection_contract () =
  let sh = SI.create ~shards:3 () in
  Fun.protect ~finally:(fun () -> SI.close sh) @@ fun () ->
  let m = Model.create () in
  let texts = [ "banana"; "bandana"; "cabana"; ""; "an an an"; "xyz" ] in
  List.iter
    (fun text ->
      let g = SI.insert sh text in
      Alcotest.(check int) "sequential global id" (Model.insert m text) g)
    texts;
  Alcotest.(check int) "doc_count" (Model.doc_count m) (SI.doc_count sh);
  Alcotest.(check int) "total_symbols" (Model.total_symbols m) (SI.total_symbols sh);
  List.iter
    (fun p ->
      Alcotest.(check (list (pair int int))) ("search " ^ p) (Model.search m p) (SI.search sh p);
      Alcotest.(check int) ("count " ^ p) (Model.count m p) (SI.count sh p))
    [ "an"; "ana"; "a"; "zz" ];
  Alcotest.(check bool) "delete live" true (SI.delete sh 1 && Model.delete m 1);
  Alcotest.(check bool) "delete dead" false (SI.delete sh 1 || Model.delete m 1);
  Alcotest.(check bool) "delete unknown" false (SI.delete sh 424242);
  Alcotest.(check bool) "mem dead" false (SI.mem sh 1);
  Alcotest.(check bool) "mem live" true (SI.mem sh 2);
  Alcotest.(check (list (pair int int))) "search after delete" (Model.search m "an")
    (SI.search sh "an");
  Alcotest.(check (option string)) "extract" (Model.extract m ~doc:2 ~off:2 ~len:3)
    (SI.extract sh ~doc:2 ~off:2 ~len:3);
  Alcotest.(check (option string)) "extract dead" None (SI.extract sh ~doc:1 ~off:0 ~len:2);
  Alcotest.check_raises "empty pattern rejected"
    (Invalid_argument "Dynamic_index: empty pattern") (fun () -> ignore (SI.search sh ""))

(* The router must be deterministic across instances and actually
   spread documents over all K shards. *)
let test_routing_spread () =
  let a = SI.create ~shards:4 () and b = SI.create ~shards:4 () in
  Fun.protect ~finally:(fun () -> SI.close a; SI.close b) @@ fun () ->
  let seen = Array.make 4 false in
  for i = 0 to 99 do
    let text = Printf.sprintf "doc %d" i in
    let ga = SI.insert a text and gb = SI.insert b text in
    Alcotest.(check int) "same global id" ga gb;
    let sa = Option.get (SI.shard_of a ga) and sb = Option.get (SI.shard_of b gb) in
    Alcotest.(check int) (Printf.sprintf "same placement for %d" ga) sa sb;
    seen.(sa) <- true
  done;
  Array.iteri
    (fun s hit -> Alcotest.(check bool) (Printf.sprintf "shard %d populated" s) true hit)
    seen

(* The composite epoch vector has length K+1 and is component-wise
   monotone under updates. *)
let test_epoch_vector_monotone () =
  let sh = SI.create ~shards:3 () in
  Fun.protect ~finally:(fun () -> SI.close sh) @@ fun () ->
  let prev = ref (SI.epoch_vector sh) in
  Alcotest.(check int) "length K+1" 4 (Array.length !prev);
  for i = 0 to 39 do
    (if i mod 5 = 4 then ignore (SI.delete sh (i - 2))
     else ignore (SI.insert sh (Printf.sprintf "epoch probe %d" i)));
    let v = SI.epoch_vector sh in
    Array.iteri
      (fun j e ->
        Alcotest.(check bool)
          (Printf.sprintf "op %d: component %d monotone" i j)
          true
          (e >= !prev.(j)))
      v;
    prev := v
  done

(* Rebalancing must be invisible to queries: after moving half of the
   hottest shard, every answer still matches the model. *)
let test_rebalance_invisible () =
  let sh = SI.create ~shards:3 () in
  Fun.protect ~finally:(fun () -> SI.close sh) @@ fun () ->
  let m = Model.create () in
  for i = 0 to 79 do
    let text = Printf.sprintf "rebalance fodder %d abcab" i in
    ignore (SI.insert sh text);
    ignore (Model.insert m text)
  done;
  for i = 0 to 19 do
    ignore (SI.delete sh (4 * i));
    ignore (Model.delete m (4 * i))
  done;
  let moved = SI.rebalance_hottest sh in
  Alcotest.(check bool) "something moved" true (moved > 0);
  Alcotest.(check int) "doc_count" (Model.doc_count m) (SI.doc_count sh);
  Alcotest.(check int) "total_symbols" (Model.total_symbols m) (SI.total_symbols sh);
  List.iter
    (fun p ->
      Alcotest.(check (list (pair int int))) ("search " ^ p) (Model.search m p) (SI.search sh p))
    [ "abcab"; "fodder"; "7" ];
  (* moved documents keep their global ids and contents *)
  for g = 0 to 79 do
    Alcotest.(check (option string))
      (Printf.sprintf "extract %d" g)
      (Model.extract m ~doc:g ~off:0 ~len:30)
      (SI.extract sh ~doc:g ~off:0 ~len:30)
  done

(* --- the shard-aware differential fuzz matrix --- *)

let fail_stream ~seed ~failure ~shrunk =
  let path = Filename.temp_file "dsdg-shard-fuzz" ".trace" in
  Trace.save ~hint:(Shard_check.hint_of_config Shard_check.default_config) path shrunk;
  Alcotest.failf "%strace saved to %s\nreplay: dsdg fuzz --replay %s --shards 4"
    (Shard_check.report ~seed ~failure ~shrunk ())
    path path

(* The bulk run: every stream is fanned over K in {1, 2, 4} and every
   answer compared against the model AND the K=1 baseline, with
   periodic hot-shard rebalance churn inside the checked region.
   Round-robin over the variant x backend matrix; every third stream
   delete-heavy. *)
let test_fuzz_matrix () =
  let variants =
    [ Dsdg_core.Dynamic_index.Amortized;
      Dsdg_core.Dynamic_index.Amortized_loglog;
      Dsdg_core.Dynamic_index.Worst_case ]
  in
  let backends =
    [ Dsdg_core.Dynamic_index.Fm; Dsdg_core.Dynamic_index.Plain_sa; Dsdg_core.Dynamic_index.Csa ]
  in
  let n_pairs = List.length variants * List.length backends in
  for i = 0 to n_streams - 1 do
    let seed = base_seed + 5000 + i in
    let pair = i mod n_pairs in
    let config =
      {
        Shard_check.default_config with
        Shard_check.sc_variant = List.nth variants (pair / List.length backends);
        sc_backend = List.nth backends (pair mod List.length backends);
      }
    in
    let profile = if i mod 3 = 2 then Dsdg_check.Opgen.churny else Dsdg_check.Opgen.default in
    match Shard_check.run_stream ~config ~profile ~seed ~ops:ops_per_stream () with
    | Shard_check.Pass -> ()
    | Shard_check.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
  done

(* Reader-routed smoke: the scatter-gather path with every per-shard
   query served from that shard's reader pool. *)
let test_fuzz_readers_smoke () =
  let config = { Shard_check.default_config with Shard_check.sc_readers = 1 } in
  for i = 0 to 7 do
    let seed = base_seed + 6000 + i in
    match Shard_check.run_stream ~config ~seed ~ops:ops_per_stream () with
    | Shard_check.Pass -> ()
    | Shard_check.Fail { failure; shrunk; _ } -> fail_stream ~seed ~failure ~shrunk
  done

(* --- durable sweeps --- *)

(* Crash a K=2 sharded store at every 5th op (completed migrations in
   the meta log on odd points), recover in parallel, verify against the
   model, continue the trace, re-verify. *)
let test_kill_sweep () =
  with_tmp_dir (fun dir ->
      let ops = Dsdg_check.Opgen.generate ~seed:(base_seed + 7000) ~ops:60 () in
      let outcome = Shard_check.kill_sweep ~shards:2 ~stride:5 ~dir ~ops () in
      Alcotest.(check bool) "points exercised" true (outcome.Store.Kill_check.kc_points > 5);
      Alcotest.(check string) "no failures" ""
        (String.concat "; "
           (List.map
              (fun f ->
                Printf.sprintf "point %d: %s" f.Store.Kill_check.kf_point
                  f.Store.Kill_check.kf_detail)
              outcome.Store.Kill_check.kc_failures)))

(* Kill at every state-machine point of a live migration: recovery must
   re-serve each acknowledged write exactly once, no loss and no
   duplicate across the source and destination shards. *)
let test_split_kill_sweep () =
  with_tmp_dir (fun dir ->
      let ops = Dsdg_check.Opgen.generate ~seed:(base_seed + 7100) ~ops:40 () in
      let outcome = Shard_check.split_kill_sweep ~shards:3 ~dir ~ops () in
      Alcotest.(check bool) "points exercised" true (outcome.Store.Kill_check.kc_points > 2);
      Alcotest.(check string) "no failures" ""
        (String.concat "; "
           (List.map
              (fun f ->
                Printf.sprintf "point %d: %s" f.Store.Kill_check.kf_point
                  f.Store.Kill_check.kf_detail)
              outcome.Store.Kill_check.kc_failures)))

(* Sequential (recovery_jobs=0) and parallel (recovery_jobs=4) recovery
   of the same crashed K=4 store must agree on everything. *)
let test_parallel_recovery_equivalence () =
  with_tmp_dir (fun dir ->
      let texts = List.init 60 (fun i -> Printf.sprintf "parallel recovery doc %d abab" i) in
      let build () =
        let sh, _ = SI.open_store ~shards:4 ~dir () in
        List.iter (fun t -> ignore (SI.insert sh t)) texts;
        for i = 0 to 14 do
          ignore (SI.delete sh (3 * i))
        done;
        ignore (SI.rebalance_hottest sh);
        SI.kill sh ~torn:true
      in
      build ();
      let probe recovery_jobs =
        let sh, infos = SI.open_store ~recovery_jobs ~shards:4 ~dir () in
        let replayed =
          Array.fold_left (fun a i -> a + i.Store.Recovery.ri_replayed) 0 infos
        in
        let r =
          ( SI.doc_count sh,
            SI.total_symbols sh,
            SI.search sh "abab",
            SI.count sh "recovery",
            replayed )
        in
        SI.kill sh ~torn:false;
        r
      in
      let seq = probe 0 in
      let par = probe 4 in
      Alcotest.(check bool) "sequential = parallel" true (seq = par);
      let _, _, hits, _, _ = seq in
      Alcotest.(check int) "all live docs found" 45 (List.length hits))

(* A store remembers its K: reopening with a different count is a
   Shard_mismatch, and store_shards reads it back without opening. *)
let test_shard_mismatch () =
  with_tmp_dir (fun dir ->
      let sh, _ = SI.open_store ~shards:2 ~dir () in
      ignore (SI.insert sh "mismatch probe");
      SI.close sh;
      Alcotest.(check (option int)) "store_shards" (Some 2) (SI.store_shards ~dir);
      Alcotest.check_raises "reopen with wrong K"
        (SI.Shard_mismatch { dir; on_disk = 2; requested = 3 }) (fun () ->
          ignore (SI.open_store ~shards:3 ~dir ())))

(* apply_batch through the sharded store: results in op order, insert
   results carrying global ids, and the landed state byte-identical to
   the same ops applied one by one in memory. *)
let test_apply_batch () =
  with_tmp_dir (fun dir ->
      let ops =
        [ Trace.Insert "batch alpha ab";
          Trace.Insert "batch bravo ab";
          Trace.Delete 0;
          Trace.Insert "batch charlie";
          Trace.Delete 17;
          Trace.Insert "batch delta ab" ]
      in
      let sh, _ = SI.open_store ~shards:3 ~dir () in
      let results = SI.apply_batch sh ops in
      let expected =
        [ Store.Durable.Br_inserted 0;
          Store.Durable.Br_inserted 1;
          Store.Durable.Br_deleted true;
          Store.Durable.Br_inserted 2;
          Store.Durable.Br_deleted false;
          Store.Durable.Br_inserted 3 ]
      in
      Alcotest.(check bool) "results in op order with global ids" true (results = expected);
      let reference = SI.create ~shards:1 () in
      List.iter
        (function
          | Trace.Insert s -> ignore (SI.insert reference s)
          | Trace.Delete id -> ignore (SI.delete reference id)
          | _ -> ())
        ops;
      Alcotest.(check (list (pair int int))) "batched = sequential" (SI.search reference "ab")
        (SI.search sh "ab");
      SI.close reference;
      (* the batch survives a crash: one group commit per shard *)
      SI.kill sh ~torn:true;
      let sh2, _ = SI.open_store ~shards:3 ~dir () in
      Alcotest.(check int) "doc_count after recovery" 3 (SI.doc_count sh2);
      Alcotest.(check int) "count after recovery" 3 (SI.count sh2 "batch");
      SI.close sh2)

(* --- composite-epoch time travel --- *)

(* An as-of query under a captured epoch vector must answer exactly as
   the collection did at capture time, however the writer moves on. *)
let test_epoch_vector_asof () =
  let sh = SI.create ~shards:3 ~retain_epochs:32 () in
  Fun.protect ~finally:(fun () -> SI.close sh) @@ fun () ->
  let m = Model.create () in
  List.iter
    (fun t -> Alcotest.(check int) "ids in step" (Model.insert m t) (SI.insert sh t))
    [ "banana"; "bandana"; "cabana"; "ananas"; "radar" ];
  ignore (SI.delete sh 1);
  ignore (Model.delete m 1);
  let ev = SI.epoch_vector sh in
  let patterns = [ "an"; "ana"; "a"; "ra"; "zz" ] in
  let searches = List.map (fun p -> (p, Model.search m p)) patterns in
  let then_count = Model.doc_count m in
  (* the writer moves on: more inserts, deletes, and a migration *)
  for i = 0 to 14 do
    ignore (SI.insert sh (Printf.sprintf "later doc %d anan" i))
  done;
  ignore (SI.delete sh 0);
  ignore (SI.delete sh 3);
  ignore (SI.rebalance_hottest sh);
  (* as-of answers = capture-time model; live answers have moved *)
  List.iter
    (fun (p, hits) ->
      Alcotest.(check (list (pair int int)))
        ("as-of search " ^ p) hits
        (SI.search ~epoch_vector:ev sh p);
      Alcotest.(check int) ("as-of count " ^ p) (List.length hits)
        (SI.count ~epoch_vector:ev sh p))
    searches;
  Alcotest.(check bool) "as-of mem of a doc deleted later" true (SI.mem ~epoch_vector:ev sh 0);
  Alcotest.(check bool) "as-of mem of the dead doc" false (SI.mem ~epoch_vector:ev sh 1);
  Alcotest.(check bool) "as-of mem predates later inserts" false (SI.mem ~epoch_vector:ev sh 5);
  Alcotest.(check (option string)) "as-of extract" (Some "abana") (* of "cabana" *)
    (SI.extract ~epoch_vector:ev sh ~doc:2 ~off:1 ~len:5);
  Alcotest.(check bool) "live view moved on" true (SI.doc_count sh <> then_count);
  (* an epoch vector never published raises *)
  let bogus = Array.map (fun e -> e + 1000) ev in
  match SI.search ~epoch_vector:bogus sh "an" with
  | _ -> Alcotest.fail "unpublished epoch vector answered"
  | exception Invalid_argument _ -> ()

(* A pin keeps its composite epoch resolvable past ring eviction, and
   (store mode) backup materializes it as a fresh openable store. *)
let test_pinned_backup_roundtrip () =
  with_tmp_dir (fun dir ->
      let store_dir = Filename.concat dir "store" in
      let dest = Filename.concat dir "backup" in
      Unix.mkdir dir 0o755;
      let sh, _ = SI.open_store ~shards:2 ~dir:store_dir () in
      let m = Model.create () in
      for i = 0 to 9 do
        let t = Printf.sprintf "pinned doc %d banana" i in
        ignore (SI.insert sh t);
        ignore (Model.insert m t)
      done;
      ignore (SI.delete sh 4);
      ignore (Model.delete m 4);
      let pin = SI.pin sh in
      let ev = SI.pin_epoch_vector pin in
      Alcotest.(check int) "pin vector shape" (SI.shards sh + 1) (Array.length ev);
      (* churn far past any retention (default retain_epochs is 0) *)
      for i = 0 to 24 do
        ignore (SI.insert sh (Printf.sprintf "post-pin churn %d" i))
      done;
      ignore (SI.delete sh 0);
      (* the pinned composite still answers, exactly as pinned *)
      Alcotest.(check (list (pair int int))) "pinned search" (Model.search m "ana")
        (SI.search ~epoch_vector:ev sh "ana");
      Alcotest.(check bool) "pinned mem" true (SI.mem ~epoch_vector:ev sh 0);
      (* back it up while the writer keeps going, then open the copy *)
      ignore (SI.backup sh pin ~dest);
      ignore (SI.insert sh "written during backup? after it, anyway");
      SI.unpin sh pin;
      (match SI.search ~epoch_vector:ev sh "ana" with
      | _ -> Alcotest.fail "unpinned vector still answers"
      | exception Invalid_argument _ -> ());
      Alcotest.(check (option int)) "backup remembers K" (Some 2) (SI.store_shards ~dir:dest);
      let bk, info = SI.open_store ~shards:2 ~dir:dest () in
      Alcotest.(check int) "backup replays nothing"
        0 (Array.fold_left (fun a r -> a + r.Store.Recovery.ri_replayed) 0 info);
      Alcotest.(check int) "backup doc_count" (Model.doc_count m) (SI.doc_count bk);
      Alcotest.(check (list (pair int int))) "backup search" (Model.search m "ana")
        (SI.search bk "ana");
      Alcotest.(check bool) "backup mem dead" false (SI.mem bk 4);
      Alcotest.(check (option string)) "backup extract" (Model.extract m ~doc:7 ~off:0 ~len:6)
        (SI.extract bk ~doc:7 ~off:0 ~len:6);
      (* the backup is a real store: it takes writes, with ids resuming
         after the 10 documents ever inserted before the pin *)
      let g = SI.insert bk "backup grows independently" in
      Alcotest.(check int) "fresh global id" 10 g;
      SI.close bk;
      SI.close sh)

let suite =
  [ ("collection contract (K=3)", `Quick, test_collection_contract);
    ("deterministic routing, all shards populated", `Quick, test_routing_spread);
    ("epoch vector monotone, length K+1", `Quick, test_epoch_vector_monotone);
    ("as-of queries under a captured epoch vector", `Quick, test_epoch_vector_asof);
    ("pin -> backup -> reopen round-trip", `Quick, test_pinned_backup_roundtrip);
    ("rebalance invisible to queries", `Quick, test_rebalance_invisible);
    ("shard mismatch detected", `Quick, test_shard_mismatch);
    ("apply_batch: order, global ids, crash safety", `Quick, test_apply_batch);
    ("parallel recovery = sequential recovery", `Quick, test_parallel_recovery_equivalence);
    ("kill-and-recover sweep (K=2)", `Slow, test_kill_sweep);
    ("mid-split kill sweep (K=3)", `Slow, test_split_kill_sweep);
    ("fuzz reader-routed smoke", `Slow, test_fuzz_readers_smoke);
    ("fuzz matrix streams (K in {1,2,4})", `Slow, test_fuzz_matrix) ]
