let () =
  Alcotest.run "dsdg"
    [ ("bits", Suite_bits.suite);
      ("entropy", Suite_entropy.suite);
      ("sa", Suite_sa.suite);
      ("wavelet", Suite_wavelet.suite);
      ("fm", Suite_fm.suite);
      ("gst", Suite_gst.suite);
      ("delbits", Suite_delbits.suite);
      ("exec", Suite_exec.suite);
      ("core", Suite_core.suite);
      ("transform2", Suite_transform2.suite);
      ("transform3", Suite_transform3.suite);
      ("check", Suite_check.suite);
      ("epoch", Suite_epoch.suite);
      ("store", Suite_store.suite);
      ("shard", Suite_shard.suite);
      ("dynseq", Suite_dynseq.suite);
      ("seq_backend", Suite_seq_backend.suite);
      ("binrel", Suite_binrel.suite);
      ("workload", Suite_workload.suite);
      ("serve", Suite_serve.suite);
      ("repl", Suite_repl.suite);
      ("cli", Suite_cli.suite);
      ("api", Suite_api.suite);
      ("rrr", Suite_rrr.suite);
      ("bp", Suite_bp.suite) ]
