(* Tests for dsdg_bits: Popcount, Bitvec, Rank_select, Int_vec, Elias_fano. *)

open Dsdg_bits

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Naive reference implementations. *)
let naive_rank1 bools i =
  let acc = ref 0 in
  List.iteri (fun j b -> if j < i && b then incr acc) bools;
  !acc

let naive_select bools which k =
  let rec go j seen = function
    | [] -> raise Not_found
    | b :: rest ->
      if b = which then if seen = k then j else go (j + 1) (seen + 1) rest
      else go (j + 1) seen rest
  in
  go 0 0 bools

let random_bools st n p =
  List.init n (fun _ -> Random.State.float st 1.0 < p)

(* --- popcount --- *)

(* Every space figure in the library derives from this constant (an
   OCaml int carries 62 payload bits on 64-bit platforms); the old
   accounting hard-coded 63 in several space_bits implementations. *)
let test_word_bits () =
  check "word_bits" 62 Popcount.word_bits;
  check "word_bits = bits of max_int" (Popcount.count max_int) Popcount.word_bits;
  check "low_mask full" max_int (Popcount.low_mask Popcount.word_bits)

let test_popcount_small () =
  check "0" 0 (Popcount.count 0);
  check "1" 1 (Popcount.count 1);
  check "255" 8 (Popcount.count 255);
  check "max_int" 62 (Popcount.count max_int);
  check "max_int minus low bit" 61 (Popcount.count (max_int lxor 1))

let test_popcount_select () =
  (* k-th set bit of a known pattern *)
  let x = 0b101101 in
  check "sel0" 0 (Popcount.select x 0);
  check "sel1" 2 (Popcount.select x 1);
  check "sel2" 3 (Popcount.select x 2);
  check "sel3" 5 (Popcount.select x 3)

let prop_popcount_select =
  QCheck.Test.make ~name:"popcount: select is inverse of rank" ~count:500
    QCheck.(pair (int_bound (1 lsl 30)) (int_bound 62))
    (fun (x, _) ->
      let c = Popcount.count x in
      let ok = ref true in
      for k = 0 to c - 1 do
        let p = Popcount.select x k in
        if (x lsr p) land 1 <> 1 then ok := false;
        (* rank of p = k *)
        let r = Popcount.count (x land ((1 lsl p) - 1)) in
        if r <> k then ok := false
      done;
      !ok)

(* --- bitvec --- *)

let test_bitvec_basic () =
  let bv = Bitvec.create 130 in
  check "len" 130 (Bitvec.length bv);
  check "count0" 0 (Bitvec.count bv);
  Bitvec.set bv 0;
  Bitvec.set bv 63;
  Bitvec.set bv 129;
  check "count3" 3 (Bitvec.count bv);
  checkb "get0" true (Bitvec.get bv 0);
  checkb "get1" false (Bitvec.get bv 1);
  checkb "get63" true (Bitvec.get bv 63);
  checkb "get129" true (Bitvec.get bv 129);
  Bitvec.clear bv 63;
  checkb "cleared" false (Bitvec.get bv 63);
  check "count2" 2 (Bitvec.count bv)

let test_bitvec_full () =
  List.iter
    (fun n ->
      let bv = Bitvec.create_full n in
      check (Printf.sprintf "full %d" n) n (Bitvec.count bv))
    [ 0; 1; 62; 63; 64; 126; 127; 200 ]

let test_bitvec_bounds () =
  let bv = Bitvec.create 10 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec: index out of bounds") (fun () ->
      ignore (Bitvec.get bv (-1)));
  Alcotest.check_raises "get 10" (Invalid_argument "Bitvec: index out of bounds") (fun () ->
      ignore (Bitvec.get bv 10))

let test_bitvec_iter_ones () =
  let bv = Bitvec.create 300 in
  let expected = [ 0; 5; 62; 63; 64; 150; 299 ] in
  List.iter (Bitvec.set bv) expected;
  let got = ref [] in
  Bitvec.iter_ones (fun i -> got := i :: !got) bv;
  Alcotest.(check (list int)) "iter_ones" expected (List.rev !got)

let prop_bitvec_roundtrip =
  QCheck.Test.make ~name:"bitvec: of_bools/to_bools roundtrip" ~count:200
    QCheck.(list bool)
    (fun l ->
      let bv = Bitvec.of_bools l in
      Bitvec.to_bools bv = l)

(* --- rank/select --- *)

let test_rank_select_exhaustive () =
  let st = Random.State.make [| 42 |] in
  List.iter
    (fun (n, p) ->
      let bools = random_bools st n p in
      let rs = Rank_select.build (Bitvec.of_bools bools) in
      for i = 0 to n do
        check (Printf.sprintf "rank1 %d" i) (naive_rank1 bools i) (Rank_select.rank1 rs i);
        check (Printf.sprintf "rank0 %d" i) (i - naive_rank1 bools i) (Rank_select.rank0 rs i)
      done;
      let ones = Rank_select.ones rs in
      for k = 0 to ones - 1 do
        check (Printf.sprintf "select1 %d" k) (naive_select bools true k) (Rank_select.select1 rs k)
      done;
      let zeros = Rank_select.zeros rs in
      for k = 0 to zeros - 1 do
        check (Printf.sprintf "select0 %d" k) (naive_select bools false k) (Rank_select.select0 rs k)
      done)
    [ (1, 0.5); (63, 0.5); (64, 0.1); (500, 0.9); (1000, 0.01); (2000, 0.5) ]

let test_rank_select_all_ones () =
  let rs = Rank_select.build (Bitvec.create_full 1000) in
  check "ones" 1000 (Rank_select.ones rs);
  check "rank mid" 500 (Rank_select.rank1 rs 500);
  check "select" 999 (Rank_select.select1 rs 999)

let test_rank_select_all_zeros () =
  let rs = Rank_select.build (Bitvec.create 1000) in
  check "ones" 0 (Rank_select.ones rs);
  check "select0" 999 (Rank_select.select0 rs 999)

let prop_rank_select =
  QCheck.Test.make ~name:"rank/select agree with naive on random vectors" ~count:100
    QCheck.(list bool)
    (fun l ->
      let rs = Rank_select.build (Bitvec.of_bools l) in
      let n = List.length l in
      let ok = ref true in
      for i = 0 to n do
        if Rank_select.rank1 rs i <> naive_rank1 l i then ok := false
      done;
      for k = 0 to Rank_select.ones rs - 1 do
        if Rank_select.select1 rs k <> naive_select l true k then ok := false
      done;
      !ok)

let prop_select_rank_inverse =
  QCheck.Test.make ~name:"rank1 (select1 k + 1) = k + 1" ~count:200
    QCheck.(list bool)
    (fun l ->
      let rs = Rank_select.build (Bitvec.of_bools l) in
      let ok = ref true in
      for k = 0 to Rank_select.ones rs - 1 do
        let p = Rank_select.select1 rs k in
        if Rank_select.rank1 rs (p + 1) <> k + 1 then ok := false;
        if not (Rank_select.get rs p) then ok := false
      done;
      !ok)

(* --- int_vec --- *)

let test_int_vec_basic () =
  let iv = Int_vec.create ~width:7 100 in
  for i = 0 to 99 do
    Int_vec.set iv i (i mod 128)
  done;
  for i = 0 to 99 do
    check (Printf.sprintf "iv %d" i) (i mod 128) (Int_vec.get iv i)
  done

let test_int_vec_wide () =
  (* width that straddles word boundaries *)
  let iv = Int_vec.create ~width:62 10 in
  let vals = [| 0; 1; max_int lsr 1; 12345678901234; 1 lsl 61; 42; 0; (1 lsl 62) - 1; 7; 99 |] in
  Array.iteri (fun i v -> Int_vec.set iv i v) vals;
  Array.iteri (fun i v -> check (Printf.sprintf "wide %d" i) v (Int_vec.get iv i)) vals

let test_int_vec_width_for () =
  check "w1" 1 (Int_vec.width_for 0);
  check "w1b" 1 (Int_vec.width_for 1);
  check "w2" 2 (Int_vec.width_for 2);
  check "w2b" 2 (Int_vec.width_for 3);
  check "w8" 8 (Int_vec.width_for 255);
  check "w9" 9 (Int_vec.width_for 256)

let prop_int_vec_roundtrip =
  QCheck.Test.make ~name:"int_vec: set/get roundtrip at every width" ~count:100
    QCheck.(pair (int_range 1 62) (list (int_bound 1000000)))
    (fun (width, l) ->
      let mask = (1 lsl width) - 1 in
      let a = Array.of_list (List.map (fun v -> v land mask) l) in
      let iv = Int_vec.of_array ~width a in
      Int_vec.to_array iv = a)

(* --- elias_fano --- *)

let test_elias_fano_basic () =
  let vals = [| 1; 4; 7; 18; 24; 26; 30; 31 |] in
  let ef = Elias_fano.build vals in
  Array.iteri (fun i v -> check (Printf.sprintf "ef %d" i) v (Elias_fano.get ef i)) vals

let test_elias_fano_dense () =
  let vals = Array.init 100 (fun i -> i) in
  let ef = Elias_fano.build vals in
  Array.iteri (fun i v -> check (Printf.sprintf "dense %d" i) v (Elias_fano.get ef i)) vals

let test_elias_fano_rank_lt () =
  let vals = [| 2; 2; 5; 9; 9; 9; 40 |] in
  let ef = Elias_fano.build vals in
  check "lt 0" 0 (Elias_fano.rank_lt ef 0);
  check "lt 2" 0 (Elias_fano.rank_lt ef 2);
  check "lt 3" 2 (Elias_fano.rank_lt ef 3);
  check "lt 9" 3 (Elias_fano.rank_lt ef 9);
  check "lt 10" 6 (Elias_fano.rank_lt ef 10);
  check "lt 41" 7 (Elias_fano.rank_lt ef 41)

let prop_elias_fano =
  QCheck.Test.make ~name:"elias_fano: access roundtrip on sorted lists" ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (int_bound 100000))
    (fun l ->
      let a = Array.of_list (List.sort compare l) in
      let ef = Elias_fano.build a in
      let ok = ref (Elias_fano.length ef = Array.length a) in
      Array.iteri (fun i v -> if Elias_fano.get ef i <> v then ok := false) a;
      !ok)

let prop_elias_fano_rank =
  QCheck.Test.make ~name:"elias_fano: rank_lt agrees with naive" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 100) (int_bound 1000)) (int_bound 1100))
    (fun (l, v) ->
      let a = Array.of_list (List.sort compare l) in
      let ef = Elias_fano.build a in
      let naive = Array.fold_left (fun acc x -> if x < v then acc + 1 else acc) 0 a in
      Elias_fano.rank_lt ef v = naive)

let qsuite = List.map Qc.to_alcotest
  [ prop_popcount_select; prop_bitvec_roundtrip; prop_rank_select;
    prop_select_rank_inverse; prop_int_vec_roundtrip; prop_elias_fano;
    prop_elias_fano_rank ]

let suite =
  [ ("word_bits constant", `Quick, test_word_bits);
    ("popcount small", `Quick, test_popcount_small);
    ("popcount select", `Quick, test_popcount_select);
    ("bitvec basic", `Quick, test_bitvec_basic);
    ("bitvec full", `Quick, test_bitvec_full);
    ("bitvec bounds", `Quick, test_bitvec_bounds);
    ("bitvec iter_ones", `Quick, test_bitvec_iter_ones);
    ("rank/select exhaustive", `Quick, test_rank_select_exhaustive);
    ("rank/select all ones", `Quick, test_rank_select_all_ones);
    ("rank/select all zeros", `Quick, test_rank_select_all_zeros);
    ("int_vec basic", `Quick, test_int_vec_basic);
    ("int_vec wide", `Quick, test_int_vec_wide);
    ("int_vec width_for", `Quick, test_int_vec_width_for);
    ("elias_fano basic", `Quick, test_elias_fano_basic);
    ("elias_fano dense", `Quick, test_elias_fano_dense);
    ("elias_fano rank_lt", `Quick, test_elias_fano_rank_lt) ]
  @ qsuite
