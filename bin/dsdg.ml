(* dsdg: command-line front end for the dynamic compressed document index.

     dsdg index FILE...           index files (one document per line of each
                                  file, or whole files with --whole), then
                                  answer queries from stdin; with --store DIR
                                  every mutation is write-ahead-logged and the
                                  session survives a crash
     dsdg save DIR FILE...        index files into a durable store directory
                                  and checkpoint (snapshot + empty WAL)
     dsdg load DIR                recover an index from a store directory
                                  (newest valid snapshot + WAL tail replay),
                                  then answer queries from stdin
     dsdg demo                    run a synthetic churn demo with stats
     dsdg stats                   run a scripted churn workload and dump the
                                  observability layer (counters, latency
                                  histograms, structural events, space vs
                                  the entropy budget)
     dsdg fuzz                    differential checking: drive random op
                                  streams through variant x backend pairs
                                  against a naive model with paper-invariant
                                  oracles; failures shrink to a minimal
                                  trace replayable with --replay; with
                                  --store DIR it instead runs the
                                  kill-and-recover sweep (crash at every
                                  k-th op, recover, diff against the model)

   Query language on stdin (after `dsdg index` / `dsdg load`):
     ?PATTERN      report occurrences
     #PATTERN      count occurrences
     +TEXT         insert TEXT as a new document
     -ID           delete document ID
     =ID OFF LEN   extract a substring
     .             print stats and exit *)

open Dsdg_core
open Cmdliner
module Store = Dsdg_store

let variant_of_string = function
  | "amortized" -> Dynamic_index.Amortized
  | "loglog" -> Dynamic_index.Amortized_loglog
  | "worst-case" -> Dynamic_index.Worst_case
  | s -> invalid_arg ("unknown variant: " ^ s)

let backend_of_string = function
  | "fm" -> Dynamic_index.Fm
  | "sa" -> Dynamic_index.Plain_sa
  | "csa" -> Dynamic_index.Csa
  | s -> invalid_arg ("unknown backend: " ^ s)

let profile_of_string = function
  | "default" -> Dsdg_check.Opgen.default
  | "churny" -> Dsdg_check.Opgen.churny
  | s -> invalid_arg ("unknown profile: " ^ s)

(* Store-mode error envelope: a corrupt snapshot, an interior-corrupt
   WAL or a snapshot/WAL serial gap is a problem with the files on
   disk, not a crash -- report where, and exit 2 like a parse error. *)
let with_store_errors ~dir f =
  try f () with
  | Dsdg_check.Trace.Parse_error e ->
    prerr_endline
      (Dsdg_check.Trace.parse_error_message ~file:(Store.Recovery.wal_path ~dir) e);
    exit 2
  | Store.Codec.Corrupt { file; section; reason } ->
    Printf.eprintf "%s: corrupt %S section: %s\n" file section reason;
    exit 2
  | Store.Recovery.Gap { dir; snapshot_serial; wal_serial0 } ->
    Printf.eprintf
      "%s: WAL starts at serial %d but the newest loadable snapshot covers only serials < %d; \
       the records in between are unrecoverable, refusing to open with silent data loss\n"
      dir wal_serial0 snapshot_serial;
    exit 2

let store_config ~sync ~checkpoint_every ~jobs =
  match Store.Wal.sync_of_string sync with
  | Error msg -> invalid_arg ("--sync: " ^ msg)
  | Ok s ->
    {
      Store.Durable.default_config with
      Store.Durable.sync = s;
      checkpoint_every;
      checkpoint_jobs = (if jobs > 0 then 1 else 0);
    }

let print_stats idx =
  Printf.printf "documents : %d\n" (Dynamic_index.doc_count idx);
  Printf.printf "symbols   : %d\n" (Dynamic_index.total_symbols idx);
  Printf.printf "space     : %d bits (%.2f bits/symbol)\n" (Dynamic_index.space_bits idx)
    (if Dynamic_index.total_symbols idx = 0 then 0.
     else float_of_int (Dynamic_index.space_bits idx) /. float_of_int (Dynamic_index.total_symbols idx));
  Printf.printf "engine    : %s\n" (Dynamic_index.describe idx)

let repl ?insert:ins ?delete:del idx =
  (* mutations go through the durable store when one is wired in, so an
     interactive session is WAL-logged like any other client *)
  let do_insert = match ins with Some f -> f | None -> Dynamic_index.insert idx in
  let do_delete = match del with Some f -> f | None -> Dynamic_index.delete idx in
  (* with a reader pool the interactive queries exercise the read plane:
     served from a reader domain against the latest published epoch *)
  let pooled = Dynamic_index.readers idx > 0 in
  let do_search arg =
    if pooled then Dynamic_index.query idx (fun v -> Dynamic_index.view_search v arg)
    else Dynamic_index.search idx arg
  in
  let do_count arg =
    if pooled then Dynamic_index.query idx (fun v -> Dynamic_index.view_count v arg)
    else Dynamic_index.count idx arg
  in
  (try
     while true do
       let line = input_line stdin in
       if String.length line > 0 then begin
         let arg = String.sub line 1 (String.length line - 1) in
         match line.[0] with
         | ('?' | '#') when arg = "" ->
           (* the index uniformly rejects the empty pattern; say so
              instead of dying on Invalid_argument *)
           Printf.printf "empty pattern (matches everywhere); give at least one symbol\n%!"
         | '?' ->
           let hits = do_search arg in
           List.iter (fun (d, o) -> Printf.printf "doc %d off %d\n" d o) hits;
           Printf.printf "%d occurrence(s)\n%!" (List.length hits)
         | '#' -> Printf.printf "%d\n%!" (do_count arg)
         | '+' -> Printf.printf "doc %d\n%!" (do_insert arg)
         | '-' ->
           let ok = do_delete (int_of_string (String.trim arg)) in
           Printf.printf "%s\n%!" (if ok then "deleted" else "no such document")
         | '=' -> (
           match String.split_on_char ' ' (String.trim arg) with
           | [ id; off; len ] -> (
             match
               Dynamic_index.extract idx ~doc:(int_of_string id) ~off:(int_of_string off)
                 ~len:(int_of_string len)
             with
             | Some s -> Printf.printf "%S\n%!" s
             | None -> Printf.printf "out of range or deleted\n%!")
           | _ -> Printf.printf "usage: =ID OFF LEN\n%!")
         | '.' -> raise Exit
         | _ -> Printf.printf "commands: ?PAT #PAT +TEXT -ID =ID OFF LEN .\n%!"
       end
     done
   with End_of_file | Exit -> ());
  print_stats idx

let index_files ~insert ~whole files =
  List.iter
    (fun file ->
      let ic = open_in file in
      if whole then begin
        let n = in_channel_length ic in
        ignore (insert (really_input_string ic n))
      end
      else begin
        try
          while true do
            let line = input_line ic in
            if String.length line > 0 then ignore (insert line)
          done
        with End_of_file -> ()
      end;
      close_in ic)
    files

let index_cmd files whole variant backend sample tau jobs readers store sync checkpoint_every =
  match store with
  | None ->
    let idx =
      Dynamic_index.create ~variant:(variant_of_string variant)
        ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers ()
    in
    index_files ~insert:(Dynamic_index.insert idx) ~whole files;
    Printf.printf "indexed %d document(s) from %d file(s)\n%!" (Dynamic_index.doc_count idx)
      (List.length files);
    Fun.protect ~finally:(fun () -> Dynamic_index.close idx) (fun () -> repl idx)
  | Some dir ->
    with_store_errors ~dir (fun () ->
        let config = store_config ~sync ~checkpoint_every ~jobs in
        let d, info =
          Store.Durable.open_ ~config ~variant:(variant_of_string variant)
            ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers ~dir ()
        in
        print_endline (Store.Recovery.info_to_string info);
        index_files ~insert:(Store.Durable.insert d) ~whole files;
        Printf.printf "indexed %d document(s) from %d file(s) into %s (next WAL serial %d)\n%!"
          (Dynamic_index.doc_count (Store.Durable.index d))
          (List.length files) dir
          (Store.Durable.wal_serial d);
        Fun.protect
          ~finally:(fun () -> Store.Durable.close d)
          (fun () ->
            repl ~insert:(Store.Durable.insert d) ~delete:(Store.Durable.delete d)
              (Store.Durable.index d)))

(* dsdg save: index files into a store directory, then checkpoint, so
   the next open (dsdg load, or any --store run) starts from the
   snapshot with zero WAL replay. Reuses prior state in the directory
   if there is any -- `save` onto an existing store appends. *)
let save_cmd dir files whole variant backend sample tau sync =
  with_store_errors ~dir (fun () ->
      let config = store_config ~sync ~checkpoint_every:0 ~jobs:0 in
      let d, info =
        Store.Durable.open_ ~config ~variant:(variant_of_string variant)
          ~backend:(backend_of_string backend) ~sample ~tau ~dir ()
      in
      if info.Store.Recovery.ri_snapshot <> None || info.Store.Recovery.ri_replayed > 0 then
        print_endline (Store.Recovery.info_to_string info);
      index_files ~insert:(Store.Durable.insert d) ~whole files;
      Store.Durable.checkpoint d;
      let docs = Dynamic_index.doc_count (Store.Durable.index d) in
      let serial = Store.Durable.wal_serial d in
      Store.Durable.close d;
      match Store.Snapshot.list ~dir with
      | (path, _) :: _ ->
        Printf.printf "saved %d document(s): %s (%d bytes, WAL serial %d)\n" docs path
          (Unix.stat path).Unix.st_size serial
      | [] -> Printf.printf "saved %d document(s) into %s (WAL serial %d)\n" docs dir serial)

(* dsdg load: crash recovery (newest valid snapshot + WAL tail replay)
   followed by the interactive query loop; mutations made in the loop
   keep flowing through the WAL. *)
let load_cmd dir variant backend sample tau jobs readers sync checkpoint_every =
  with_store_errors ~dir (fun () ->
      let config = store_config ~sync ~checkpoint_every ~jobs in
      let d, info =
        Store.Durable.open_ ~config ~variant:(variant_of_string variant)
          ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers ~dir ()
      in
      print_endline (Store.Recovery.info_to_string info);
      Fun.protect
        ~finally:(fun () -> Store.Durable.close d)
        (fun () ->
          repl ~insert:(Store.Durable.insert d) ~delete:(Store.Durable.delete d)
            (Store.Durable.index d)))

let demo_cmd ops =
  let open Dsdg_workload in
  let st = Text_gen.rng 7 in
  let idx = Dynamic_index.create () in
  let live = ref [] in
  for _ = 1 to ops do
    if Random.State.float st 1.0 < 0.7 || !live = [] then
      live := Dynamic_index.insert idx (Text_gen.english_like st ~len:(30 + Random.State.int st 100)) :: !live
    else begin
      match !live with
      | id :: rest ->
        ignore (Dynamic_index.delete idx id);
        live := rest
      | [] -> ()
    end
  done;
  List.iter
    (fun w -> Printf.printf "count %-8S = %d\n" w (Dynamic_index.count idx w))
    [ "data"; "index"; "query" ];
  print_stats idx

(* Scripted churn workload + full observability dump: the living
   counterpart of DESIGN.md's "Observability" section. With --store the
   workload runs through the durable store, so the dump also shows the
   store scope: WAL appends/fsyncs, checkpoint latency, snapshot bytes. *)
let stats_cmd ops variant backend sample tau no_obs jobs readers store sync checkpoint_every =
  let open Dsdg_workload in
  let open Dsdg_obs in
  if no_obs then Obs.set_enabled false;
  let durable =
    match store with
    | None -> None
    | Some dir ->
      Some
        (with_store_errors ~dir (fun () ->
             let config = store_config ~sync ~checkpoint_every ~jobs in
             fst
               (Store.Durable.open_ ~config ~variant:(variant_of_string variant)
                  ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers ~dir ())))
  in
  let idx =
    match durable with
    | Some d -> Store.Durable.index d
    | None ->
      Dynamic_index.create ~variant:(variant_of_string variant)
        ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers ()
  in
  let ins, del =
    match durable with
    | Some d -> (Store.Durable.insert d, Store.Durable.delete d)
    | None -> (Dynamic_index.insert idx, Dynamic_index.delete idx)
  in
  let st = Text_gen.rng 42 in
  let live = ref [] in
  let searches = ref 0 and hits = ref 0 in
  for i = 1 to ops do
    let r = Random.State.float st 1.0 in
    if r < 0.55 || !live = [] then
      live := ins (Text_gen.english_like st ~len:(30 + Random.State.int st 120)) :: !live
    else if r < 0.8 then begin
      (* delete a random live doc; occasionally retry a dead id to
         exercise the failed-delete path *)
      match !live with
      | id :: rest ->
        ignore (del id);
        if i mod 17 = 0 then ignore (del id);
        live := rest
      | [] -> ()
    end
    else begin
      incr searches;
      let p = if i mod 2 = 0 then "data" else "query" in
      let c =
        if readers > 0 then Dynamic_index.query idx (fun v -> Dynamic_index.view_count v p)
        else Dynamic_index.count idx p
      in
      hits := !hits + c
    end
  done;
  Printf.printf "workload  : %d ops (%d searches, %d pattern hits)\n" ops !searches !hits;
  print_stats idx;
  let syms = Dynamic_index.total_symbols idx in
  if syms > 0 then begin
    (* Entropy budget: reconstruct the live text through the index itself
       and compare measured bits/symbol with H0 and H2. *)
    let buf = Buffer.create syms in
    List.iter
      (fun id ->
        (* documents have unknown length: binary-search down from a
           generous cap until extract accepts the range *)
        let rec grab len =
          if len >= 1 then
            match Dynamic_index.extract idx ~doc:id ~off:0 ~len with
            | Some s -> Buffer.add_string buf s
            | None -> grab (len / 2)
        in
        grab 4096)
      !live;
    let text = Buffer.contents buf in
    if String.length text > 0 then begin
      let open Dsdg_entropy in
      Printf.printf "entropy   : H0=%.3f H2=%.3f bits/symbol (paper budget nHk + o(n))\n"
        (Entropy.h0 text) (Entropy.hk ~k:2 text)
    end
  end;
  print_newline ();
  (* join worker domains before rendering so the executor counters
     (exec_submitted/completed/..., queue depth, wall/handoff latency)
     are final; they live in the same scope as the transformation's *)
  (match durable with
  | Some d ->
    Printf.printf "store     : %s (next WAL serial %d)\n" (Store.Durable.dir d)
      (Store.Durable.wal_serial d);
    Store.Durable.close d
  | None -> Dynamic_index.close idx);
  if no_obs then print_endline "observability disabled (--no-obs): no counters recorded"
  else begin
    print_string (Obs.render (Dynamic_index.obs_scope idx));
    List.iter (fun s -> print_string (Obs.render s)) (Obs.registered ())
  end

(* Differential fuzzing: the CLI face of Dsdg_check (DESIGN.md section 6).
   A failing stream is shrunk to a minimal trace, saved, and the replay
   one-liner printed -- a CI failure reproduces with a single command.
   With --store DIR the same op streams instead drive the
   kill-and-recover sweep of Dsdg_store.Kill_check: crash (optionally
   tearing the final WAL record) at every stride-th op, recover, and
   diff the recovered index against the model. *)
let fuzz_cmd seed ops streams variant backend sample tau fault profile replay trace_dir jobs
    readers store sync checkpoint_every kill_stride =
  let open Dsdg_check in
  let load_trace file =
    try Trace.load file
    with Trace.Parse_error e ->
      prerr_endline (Trace.parse_error_message ~file e);
      exit 2
  in
  match store with
  | Some dir ->
    (* kill-and-recover mode: the scheduling faults do not apply here;
       the planted fault is the torn write *)
    let torn =
      match fault with
      | "none" -> false
      | "torn-write" -> true
      | s ->
        invalid_arg ("--store kill-and-recover mode supports --fault none | torn-write, not " ^ s)
    in
    let sweep_ops =
      match replay with
      | Some file -> load_trace file
      | None -> Opgen.generate ~profile:(profile_of_string profile) ~seed ~ops ()
    in
    let config =
      store_config ~sync
        ~checkpoint_every:(if checkpoint_every > 0 then checkpoint_every else 7)
        ~jobs
    in
    let variants =
      match variant with "all" -> [ "amortized"; "loglog"; "worst-case" ] | v -> [ v ]
    in
    let backends = match backend with "all" -> [ "fm"; "sa"; "csa" ] | b -> [ b ] in
    let n = List.length sweep_ops in
    let stride = if kill_stride > 0 then kill_stride else max 1 (n / 16) in
    Printf.printf
      "kill-and-recover: %d op(s), crash every %d op(s)%s, %d target(s), scratch under %s\n%!" n
      stride
      (if torn then " with a torn final WAL record" else "")
      (List.length variants * List.length backends)
      dir;
    let failed = ref false in
    List.iter
      (fun v ->
        List.iter
          (fun b ->
            let scratch = Filename.concat dir (Printf.sprintf "kill-%s-%s" v b) in
            let o =
              Store.Kill_check.sweep ~variant:(variant_of_string v) ~backend:(backend_of_string b)
                ~sample ~tau ~config ~torn ~stride ~dir:scratch ~ops:sweep_ops ()
            in
            Printf.printf "%-20s %s\n%!" (v ^ "/" ^ b) (Store.Kill_check.outcome_to_string o);
            if o.Store.Kill_check.kc_failures <> [] then failed := true)
          backends)
      variants;
    if !failed then exit 1;
    Printf.printf "kill-and-recover OK: every crash point recovered to the model\n"
  | None ->
    let targets = Runner.select_targets ~variant ~backend () in
    let config =
      {
        Runner.default_config with
        Runner.sample;
        tau;
        jobs;
        readers;
        fault =
          (match fault with
          | "none" -> None
          | "skip-top-clean" -> Some `Skip_top_clean
          | "worker-crash" -> Some `Worker_crash
          | "stale-epoch" -> Some `Stale_epoch
          | "torn-write" ->
            invalid_arg
              "--fault torn-write plants a half-written WAL record in the durable store; add --store DIR"
          | s -> invalid_arg ("unknown fault: " ^ s));
      }
    in
    if config.Runner.fault = Some `Worker_crash && jobs = 0 then
      invalid_arg "--fault worker-crash requires --jobs >= 1 (it sabotages the pooled executor)";
    if config.Runner.fault = Some `Stale_epoch && readers = 0 then
      invalid_arg
        "--fault stale-epoch requires --readers >= 1 (it breaks only the read plane, which direct queries never touch)";
    let profile = profile_of_string profile in
    let tnames = String.concat ", " (List.map (fun t -> t.Runner.tg_name) targets) in
    let fail_with ~seed_used failure shrunk =
      print_string (Runner.report ?seed:seed_used ~failure ~shrunk ());
      let dir = match trace_dir with Some d -> d | None -> Filename.get_temp_dir_name () in
      let path =
        Filename.concat dir
          (match seed_used with
          | Some s -> Printf.sprintf "dsdg-fuzz-seed%d.trace" s
          | None -> "dsdg-fuzz-replay.trace")
      in
      Trace.save path shrunk;
      Printf.printf "minimal trace saved to %s\nreplay: dsdg fuzz --replay %s --variant %s --backend %s%s%s%s\n"
        path path variant backend
        (if config.Runner.fault <> None then " --fault " ^ fault else "")
        (if jobs > 0 then Printf.sprintf " --jobs %d" jobs else "")
        (if readers > 0 then Printf.sprintf " --readers %d" readers else "");
      exit 1
    in
    (match replay with
    | Some file ->
      let trace = load_trace file in
      Printf.printf "replaying %d ops from %s against %s\n%!" (List.length trace) file tnames;
      (match Runner.run_trace ~config ~targets trace with
      | Ok () -> Printf.printf "replay OK: all targets agree with the model, all invariants hold\n"
      | Error f ->
        let prefix = List.filteri (fun i _ -> i < f.Runner.f_step) trace in
        let shrunk = Runner.shrink ~config ~targets prefix in
        fail_with ~seed_used:None f shrunk)
    | None ->
      Printf.printf "fuzzing %d stream(s) x %d ops against %s\n%!" streams ops tnames;
      for s = 0 to streams - 1 do
        let stream_seed = seed + s in
        match Runner.run_stream ~config ~profile ~targets ~seed:stream_seed ~ops () with
        | Runner.Pass ->
          if streams > 1 then Printf.printf "stream seed=%d: ok\n%!" stream_seed
        | Runner.Fail { failure; shrunk; _ } -> fail_with ~seed_used:(Some stream_seed) failure shrunk
      done;
      Printf.printf "fuzz OK: %d stream(s) x %d ops, %d target(s), model + invariants clean\n" streams
        ops (List.length targets))

let files_arg = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")
let whole_arg = Arg.(value & flag & info [ "whole" ] ~doc:"Index whole files instead of lines.")
let variant_arg =
  Arg.(value & opt string "worst-case" & info [ "variant" ] ~doc:"amortized | loglog | worst-case")
let backend_arg = Arg.(value & opt string "fm" & info [ "backend" ] ~doc:"fm | sa | csa")
let sample_arg = Arg.(value & opt int 8 & info [ "sample" ] ~doc:"SA sampling rate s.")
let tau_arg = Arg.(value & opt int 8 & info [ "tau" ] ~doc:"Lazy-deletion threshold tau.")
let ops_arg = Arg.(value & opt int 500 & info [ "ops" ] ~doc:"Demo operations.")
let jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs" ]
           ~doc:"Background-rebuild worker domains (0 = deterministic synchronous mode). With --store, any value >= 1 also moves checkpoint serialization onto a worker domain.")

let readers_arg =
  Arg.(value & opt int 0
       & info [ "readers" ]
           ~doc:"Reader-pool domains serving queries from the latest published snapshot (0 = queries run on the caller's domain).")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Durable store directory: recover on open, write-ahead-log every mutation. For fuzz, switches to the kill-and-recover sweep using DIR as scratch space.")

let sync_arg =
  Arg.(value & opt string "always"
       & info [ "sync" ] ~docv:"POLICY"
           ~doc:"WAL fsync policy: always | never | N (fsync every N records).")

let checkpoint_every_arg =
  Arg.(value & opt int 0
       & info [ "checkpoint-every" ] ~docv:"K"
           ~doc:"Snapshot the index and compact the WAL every K updates (0 = never automatically; fuzz --store defaults to 7).")

let store_dir_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Store directory.")

let save_files_arg = Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"FILE")

let index_t =
  Cmd.v (Cmd.info "index" ~doc:"Index files and answer queries interactively")
    Term.(
      const index_cmd $ files_arg $ whole_arg $ variant_arg $ backend_arg $ sample_arg $ tau_arg
      $ jobs_arg $ readers_arg $ store_arg $ sync_arg $ checkpoint_every_arg)

let save_t =
  Cmd.v
    (Cmd.info "save" ~doc:"Index files into a durable store directory and checkpoint")
    Term.(
      const save_cmd $ store_dir_pos $ save_files_arg $ whole_arg $ variant_arg $ backend_arg
      $ sample_arg $ tau_arg $ sync_arg)

let load_t =
  Cmd.v
    (Cmd.info "load" ~doc:"Recover an index from a store directory and answer queries interactively")
    Term.(
      const load_cmd $ store_dir_pos $ variant_arg $ backend_arg $ sample_arg $ tau_arg $ jobs_arg
      $ readers_arg $ sync_arg $ checkpoint_every_arg)

let demo_t = Cmd.v (Cmd.info "demo" ~doc:"Synthetic churn demo") Term.(const demo_cmd $ ops_arg)

let no_obs_arg =
  Arg.(value & flag & info [ "no-obs" ] ~doc:"Disable the observability layer (overhead demo).")

let stats_t =
  Cmd.v
    (Cmd.info "stats" ~doc:"Scripted churn workload + observability dump")
    Term.(
      const stats_cmd $ ops_arg $ variant_arg $ backend_arg $ sample_arg $ tau_arg $ no_obs_arg
      $ jobs_arg $ readers_arg $ store_arg $ sync_arg $ checkpoint_every_arg)

let fuzz_seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base random seed (stream i uses seed+i).")
let fuzz_ops_arg = Arg.(value & opt int 1000 & info [ "ops" ] ~doc:"Operations per stream.")
let fuzz_streams_arg = Arg.(value & opt int 1 & info [ "streams" ] ~doc:"Number of independent streams.")
let fuzz_variant_arg =
  Arg.(value & opt string "all" & info [ "variant" ] ~doc:"all | amortized | loglog | worst-case")
let fuzz_backend_arg = Arg.(value & opt string "all" & info [ "backend" ] ~doc:"all | fm | sa | csa")
let fuzz_sample_arg = Arg.(value & opt int 2 & info [ "sample" ] ~doc:"SA sampling rate s.")
let fuzz_tau_arg = Arg.(value & opt int 4 & info [ "tau" ] ~doc:"Lazy-deletion threshold tau.")
let fuzz_fault_arg =
  Arg.(value & opt string "none"
       & info [ "fault" ]
           ~doc:"Plant a deliberate defect: none | skip-top-clean | worker-crash | stale-epoch | torn-write (harness self-tests; worker-crash needs --jobs >= 1, stale-epoch needs --readers >= 1, torn-write needs --store DIR).")
let fuzz_profile_arg =
  Arg.(value & opt string "default" & info [ "profile" ] ~doc:"Op-mix profile: default | churny.")
let fuzz_replay_arg =
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"TRACE" ~doc:"Replay a saved trace file instead of generating streams (with --store: use its ops for the kill sweep).")
let fuzz_trace_dir_arg =
  Arg.(value & opt (some dir) None & info [ "trace-dir" ] ~doc:"Where to save failing traces (default: system temp dir).")
let fuzz_kill_stride_arg =
  Arg.(value & opt int 0
       & info [ "kill-stride" ]
           ~doc:"Kill-and-recover mode: crash at every N-th op (0 = auto, about 16 crash points across the stream).")

let fuzz_t =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Differential checking with shrinking and invariant oracles")
    Term.(
      const fuzz_cmd $ fuzz_seed_arg $ fuzz_ops_arg $ fuzz_streams_arg $ fuzz_variant_arg
      $ fuzz_backend_arg $ fuzz_sample_arg $ fuzz_tau_arg $ fuzz_fault_arg $ fuzz_profile_arg
      $ fuzz_replay_arg $ fuzz_trace_dir_arg $ jobs_arg $ readers_arg $ store_arg $ sync_arg
      $ checkpoint_every_arg $ fuzz_kill_stride_arg)

let () =
  let doc = "dynamic compressed document collection index (Munro-Nekrich-Vitter, PODS 2015)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "dsdg" ~doc) [ index_t; save_t; load_t; demo_t; stats_t; fuzz_t ]))
