(* dsdg: command-line front end for the dynamic compressed document index.

     dsdg index FILE...           index files (one document per line of each
                                  file, or whole files with --whole), then
                                  answer queries from stdin; with --store DIR
                                  every mutation is write-ahead-logged and the
                                  session survives a crash
     dsdg save DIR FILE...        index files into a durable store directory
                                  and checkpoint (snapshot + empty WAL)
     dsdg open DIR                recover an index from a store directory
                                  (newest valid snapshot + WAL tail replay),
                                  then answer queries from stdin
     dsdg serve DIR               recover a store and serve it over a Unix or
                                  TCP socket: queries on the read plane,
                                  mutations group-committed to the WAL
                                  (one fsync per batch); SIGTERM/SIGINT
                                  drain, checkpoint and exit 0
     dsdg follow                  WAL-shipped read replica of a running
                                  server: bootstrap --store DIR from the
                                  leader, tail its replication streams,
                                  optionally serve read-only queries
                                  locally (writes redirect to the leader)
     dsdg load                    load generator against a running server:
                                  N client sessions, Zipf document
                                  popularity, exact p50/p90/p99/p999
     dsdg demo                    run a synthetic churn demo with stats
     dsdg stats                   run a scripted churn workload and dump the
                                  observability layer (counters, latency
                                  histograms, structural events, space vs
                                  the entropy budget)
     dsdg fuzz                    differential checking: drive random op
                                  streams through variant x backend pairs
                                  against a naive model with paper-invariant
                                  oracles; failures shrink to a minimal
                                  trace replayable with --replay; with
                                  --store DIR it instead runs the
                                  kill-and-recover sweep (crash at every
                                  k-th op, recover, diff against the model)

   Query language on stdin (after `dsdg index` / `dsdg load`):
     ?PATTERN      report occurrences
     #PATTERN      count occurrences
     +TEXT         insert TEXT as a new document
     -ID           delete document ID
     =ID OFF LEN   extract a substring
     .             print stats and exit

   Exit codes (see the EXIT STATUS section of the man page):
     0    success
     1    a checker found a real divergence (fuzz, kill-and-recover),
          or a load run finished with errors / zero completed ops
     2    data error: corrupt store files or an unparseable trace
     124  command-line usage error (Cmdliner's cli_error)
     125  unexpected internal error *)

open Dsdg_core
open Cmdliner
module Store = Dsdg_store
module Serve = Dsdg_serve
module Shard = Dsdg_shard
module Binrel = Dsdg_binrel

(* Usage errors that only surface once the command runs (a bad enum
   value, an impossible flag combination) exit like Cmdliner's own
   parse errors do, not as internal crashes. *)
let die_usage fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("dsdg: " ^ msg);
      exit Cmd.Exit.cli_error)
    fmt

let variant_of_string = function
  | "amortized" -> Dynamic_index.Amortized
  (* "t3" is the paper name: Transformation 3, the Appendix A.4
     doubling schedule with O(log log n) sub-collections *)
  | "loglog" | "t3" -> Dynamic_index.Amortized_loglog
  | "worst-case" -> Dynamic_index.Worst_case
  | s -> die_usage "unknown variant: %s" s

(* Canonical spelling for target selection and replay lines. *)
let normalize_variant = function "t3" -> "loglog" | v -> v

let backend_of_string = function
  | "fm" -> Dynamic_index.Fm
  | "sa" -> Dynamic_index.Plain_sa
  | "csa" -> Dynamic_index.Csa
  | s -> die_usage "unknown backend: %s" s

let profile_of_string = function
  | "default" -> Dsdg_check.Opgen.default
  | "churny" -> Dsdg_check.Opgen.churny
  | s -> die_usage "unknown profile: %s" s

(* Dynamic-sequence substrate selection (Dyn_bitvec AVL vs Spsi B-tree),
   a runtime choice like --jobs/--readers: never persisted in store
   dumps, recorded in replay-trace hints as seq=<name>. *)
let seq_of_string = function
  | "avl" -> Dsdg_delbits.Sums.Avl
  | "spsi" -> Dsdg_delbits.Sums.Spsi
  | s -> die_usage "unknown --seq-backend: %s (expected avl | spsi)" s

(* Relation/graph adjacency backend (wavelet-tree pair list vs k2
   quadtree), the same kind of runtime seam as --seq-backend: never
   persisted (stores hold the bare pair set), recorded in relation
   replay-trace hints as rel=<spec>. *)
let rel_kind_of_string = function
  | s -> (
    match Binrel.Rel_backend.kind_of_string s with
    | Some k -> k
    | None -> die_usage "unknown --rel-backend: %s (expected str | k2)" s)

(* Store-mode error envelope: a corrupt snapshot, an interior-corrupt
   WAL or a snapshot/WAL serial gap is a problem with the files on
   disk, not a crash -- report where, and exit 2 like a parse error. *)
let with_store_errors ~dir f =
  try f () with
  | Dsdg_check.Trace.Parse_error e ->
    prerr_endline
      (Dsdg_check.Trace.parse_error_message ~file:(Store.Recovery.wal_path ~dir) e);
    exit 2
  | Store.Codec.Corrupt { file; section; reason } ->
    Printf.eprintf "%s: corrupt %S section: %s\n" file section reason;
    exit 2
  | Store.Recovery.Gap { dir; snapshot_serial; wal_serial0 } ->
    Printf.eprintf
      "%s: WAL starts at serial %d but the newest loadable snapshot covers only serials < %d; \
       the records in between are unrecoverable, refusing to open with silent data loss\n"
      dir wal_serial0 snapshot_serial;
    exit 2

let store_config ~sync ~checkpoint_every ~jobs =
  match Store.Wal.sync_of_string sync with
  | Error msg -> die_usage "--sync: %s" msg
  | Ok s ->
    {
      Store.Durable.default_config with
      Store.Durable.sync = s;
      checkpoint_every;
      checkpoint_jobs = (if jobs > 0 then 1 else 0);
    }

(* A sharded store directory records its K in shard.meta: refuse to
   open it with a different --shards, and refuse to shard a directory
   that already holds a plain single-index store. Both are invocation
   errors (124), not data corruption. *)
let check_shard_layout ~dir ~shards =
  (match Shard.Sharded_index.store_shards ~dir with
  | Some k when k <> shards ->
    die_usage "store at %s is sharded with K=%d; pass --shards %d" dir k shards
  | _ -> ());
  if shards > 1 && Sys.file_exists (Store.Recovery.wal_path ~dir) then
    die_usage "store at %s is a plain single-index store; it cannot be opened with --shards %d"
      dir shards

(* Open a sharded store, recovering the K shards in parallel on a
   small executor pool, and report per-shard recovery. *)
let open_sharded ?(seq = "avl") ?retain_epochs ~config ~variant ~backend ~sample ~tau ~jobs
    ~readers ~shards ~dir () =
  check_shard_layout ~dir ~shards;
  let sh, infos =
    Shard.Sharded_index.open_store ~config ~variant:(variant_of_string variant)
      ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers
      ~seq_backend:(seq_of_string seq) ?retain_epochs
      ~recovery_jobs:(if shards > 1 then min shards 4 else 0)
      ~shards ~dir ()
  in
  Array.iteri
    (fun s info -> Printf.printf "shard %d: %s\n" s (Store.Recovery.info_to_string info))
    infos;
  sh

let print_stats idx =
  Printf.printf "documents : %d\n" (Dynamic_index.doc_count idx);
  Printf.printf "symbols   : %d\n" (Dynamic_index.total_symbols idx);
  Printf.printf "space     : %d bits (%.2f bits/symbol)\n" (Dynamic_index.space_bits idx)
    (if Dynamic_index.total_symbols idx = 0 then 0.
     else float_of_int (Dynamic_index.space_bits idx) /. float_of_int (Dynamic_index.total_symbols idx));
  Printf.printf "engine    : %s\n" (Dynamic_index.describe idx)

(* The interactive loop works against closures so one body serves a
   plain index, a durable store, or a sharded collection. *)
type repl_ops = {
  r_insert : string -> int;
  r_delete : int -> bool;
  r_search : string -> (int * int) list;
  r_count : string -> int;
  r_extract : doc:int -> off:int -> len:int -> string option;
  r_stats : unit -> unit;
  (* as-of queries against a retained epoch (~E ?PAT / ~E #PAT);
     None = this surface has no epoch retention to query *)
  r_asof : (epoch:int -> query:string -> unit) option;
}

let repl_of_index ?insert:ins ?delete:del idx =
  (* with a reader pool the interactive queries exercise the read plane:
     served from a reader domain against the latest published epoch *)
  let pooled = Dynamic_index.readers idx > 0 in
  {
    (* mutations go through the durable store when one is wired in, so an
       interactive session is WAL-logged like any other client *)
    r_insert = (match ins with Some f -> f | None -> Dynamic_index.insert idx);
    r_delete = (match del with Some f -> f | None -> Dynamic_index.delete idx);
    r_search =
      (fun arg ->
        if pooled then Dynamic_index.query idx (fun v -> Dynamic_index.view_search v arg)
        else Dynamic_index.search idx arg);
    r_count =
      (fun arg ->
        if pooled then Dynamic_index.query idx (fun v -> Dynamic_index.view_count v arg)
        else Dynamic_index.count idx arg);
    r_extract = (fun ~doc ~off ~len -> Dynamic_index.extract idx ~doc ~off ~len);
    r_stats = (fun () -> print_stats idx);
    r_asof =
      Some
        (fun ~epoch ~query ->
          match Dynamic_index.view_at idx ~epoch with
          | None ->
            Printf.printf "epoch %d is not retained (retained: %s); open with --retain-epochs N\n%!"
              epoch
              (String.concat ", "
                 (List.map string_of_int (Dynamic_index.retained idx)))
          | Some v ->
            let arg = String.sub query 1 (String.length query - 1) in
            (match query.[0] with
            | ('?' | '#') when arg = "" ->
              Printf.printf "empty pattern (matches everywhere); give at least one symbol\n%!"
            | '?' ->
              let hits = Dynamic_index.view_search v arg in
              List.iter (fun (d, o) -> Printf.printf "doc %d off %d\n" d o) hits;
              Printf.printf "%d occurrence(s) as of epoch %d\n%!" (List.length hits) epoch
            | '#' -> Printf.printf "%d\n%!" (Dynamic_index.view_count v arg)
            | _ -> Printf.printf "usage: ~EPOCH ?PAT or ~EPOCH #PAT\n%!"));
  }

let print_sharded_stats sh =
  Printf.printf "documents : %d\n" (Shard.Sharded_index.doc_count sh);
  Printf.printf "symbols   : %d\n" (Shard.Sharded_index.total_symbols sh);
  Printf.printf "engine    : %s\n" (Shard.Sharded_index.describe sh)

let repl_of_sharded sh =
  {
    r_insert = Shard.Sharded_index.insert sh;
    r_delete = Shard.Sharded_index.delete sh;
    r_search = Shard.Sharded_index.search sh;
    r_count = Shard.Sharded_index.count sh;
    r_extract = (fun ~doc ~off ~len -> Shard.Sharded_index.extract sh ~doc ~off ~len);
    r_stats = (fun () -> print_sharded_stats sh);
    (* sharded as-of needs a composite epoch-vector token, not one
       scalar; no interactive syntax for that (yet) *)
    r_asof = None;
  }

let repl r =
  let do_insert = r.r_insert and do_delete = r.r_delete in
  let do_search = r.r_search and do_count = r.r_count in
  (try
     while true do
       let line = input_line stdin in
       if String.length line > 0 then begin
         let arg = String.sub line 1 (String.length line - 1) in
         match line.[0] with
         | ('?' | '#') when arg = "" ->
           (* the index uniformly rejects the empty pattern; say so
              instead of dying on Invalid_argument *)
           Printf.printf "empty pattern (matches everywhere); give at least one symbol\n%!"
         | '?' ->
           let hits = do_search arg in
           List.iter (fun (d, o) -> Printf.printf "doc %d off %d\n" d o) hits;
           Printf.printf "%d occurrence(s)\n%!" (List.length hits)
         | '#' -> Printf.printf "%d\n%!" (do_count arg)
         | '+' -> Printf.printf "doc %d\n%!" (do_insert arg)
         | '-' ->
           let ok = do_delete (int_of_string (String.trim arg)) in
           Printf.printf "%s\n%!" (if ok then "deleted" else "no such document")
         | '=' -> (
           match String.split_on_char ' ' (String.trim arg) with
           | [ id; off; len ] -> (
             match
               r.r_extract ~doc:(int_of_string id) ~off:(int_of_string off)
                 ~len:(int_of_string len)
             with
             | Some s -> Printf.printf "%S\n%!" s
             | None -> Printf.printf "out of range or deleted\n%!")
           | _ -> Printf.printf "usage: =ID OFF LEN\n%!")
         | '~' -> (
           match r.r_asof with
           | None -> Printf.printf "as-of queries are not available on this surface\n%!"
           | Some asof -> (
             let arg = String.trim arg in
             match String.index_opt arg ' ' with
             | Some i -> (
               let e = String.sub arg 0 i in
               let q = String.trim (String.sub arg (i + 1) (String.length arg - i - 1)) in
               match int_of_string_opt e with
               | Some epoch when epoch >= 0 && q <> "" -> asof ~epoch ~query:q
               | _ -> Printf.printf "usage: ~EPOCH ?PAT or ~EPOCH #PAT\n%!")
             | None -> Printf.printf "usage: ~EPOCH ?PAT or ~EPOCH #PAT\n%!"))
         | '.' -> raise Exit
         | _ -> Printf.printf "commands: ?PAT #PAT +TEXT -ID =ID OFF LEN ~EPOCH ?PAT .\n%!"
       end
     done
   with End_of_file | Exit -> ());
  r.r_stats ()

let index_files ~insert ~whole files =
  List.iter
    (fun file ->
      let ic = open_in file in
      if whole then begin
        let n = in_channel_length ic in
        ignore (insert (really_input_string ic n))
      end
      else begin
        try
          while true do
            let line = input_line ic in
            if String.length line > 0 then ignore (insert line)
          done
        with End_of_file -> ()
      end;
      close_in ic)
    files

let index_cmd files whole variant backend sample tau jobs readers shards store sync
    checkpoint_every seq =
  if shards < 1 then die_usage "--shards must be >= 1 (got %d)" shards;
  match (store, shards) with
  | None, 1 ->
    let idx =
      Dynamic_index.create ~variant:(variant_of_string variant)
        ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers
        ~seq_backend:(seq_of_string seq) ()
    in
    index_files ~insert:(Dynamic_index.insert idx) ~whole files;
    Printf.printf "indexed %d document(s) from %d file(s)\n%!" (Dynamic_index.doc_count idx)
      (List.length files);
    Fun.protect ~finally:(fun () -> Dynamic_index.close idx) (fun () -> repl (repl_of_index idx))
  | None, _ ->
    let sh =
      Shard.Sharded_index.create ~variant:(variant_of_string variant)
        ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers
        ~seq_backend:(seq_of_string seq) ~shards ()
    in
    index_files ~insert:(Shard.Sharded_index.insert sh) ~whole files;
    Printf.printf "indexed %d document(s) from %d file(s) across %d shard(s)\n%!"
      (Shard.Sharded_index.doc_count sh)
      (List.length files) shards;
    Fun.protect
      ~finally:(fun () -> Shard.Sharded_index.close sh)
      (fun () -> repl (repl_of_sharded sh))
  | Some dir, 1 ->
    with_store_errors ~dir (fun () ->
        check_shard_layout ~dir ~shards;
        let config = store_config ~sync ~checkpoint_every ~jobs in
        let d, info =
          Store.Durable.open_ ~config ~variant:(variant_of_string variant)
            ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers
            ~seq_backend:(seq_of_string seq) ~dir ()
        in
        print_endline (Store.Recovery.info_to_string info);
        index_files ~insert:(Store.Durable.insert d) ~whole files;
        Printf.printf "indexed %d document(s) from %d file(s) into %s (next WAL serial %d)\n%!"
          (Dynamic_index.doc_count (Store.Durable.index d))
          (List.length files) dir
          (Store.Durable.wal_serial d);
        Fun.protect
          ~finally:(fun () -> Store.Durable.close d)
          (fun () ->
            repl
              (repl_of_index ~insert:(Store.Durable.insert d) ~delete:(Store.Durable.delete d)
                 (Store.Durable.index d))))
  | Some dir, _ ->
    with_store_errors ~dir (fun () ->
        let config = store_config ~sync ~checkpoint_every ~jobs in
        let sh =
          open_sharded ~seq ~config ~variant ~backend ~sample ~tau ~jobs ~readers ~shards ~dir ()
        in
        index_files ~insert:(Shard.Sharded_index.insert sh) ~whole files;
        Printf.printf "indexed %d document(s) from %d file(s) into %s across %d shard(s)\n%!"
          (Shard.Sharded_index.doc_count sh)
          (List.length files) dir shards;
        Fun.protect
          ~finally:(fun () -> Shard.Sharded_index.close sh)
          (fun () -> repl (repl_of_sharded sh)))

(* dsdg save: index files into a store directory, then checkpoint, so
   the next open (dsdg load, or any --store run) starts from the
   snapshot with zero WAL replay. Reuses prior state in the directory
   if there is any -- `save` onto an existing store appends. *)
let save_cmd dir files whole variant backend sample tau sync pinned =
  with_store_errors ~dir (fun () ->
      let config = store_config ~sync ~checkpoint_every:0 ~jobs:0 in
      let d, info =
        Store.Durable.open_ ~config ~variant:(variant_of_string variant)
          ~backend:(backend_of_string backend) ~sample ~tau ~dir ()
      in
      if info.Store.Recovery.ri_snapshot <> None || info.Store.Recovery.ri_replayed > 0 then
        print_endline (Store.Recovery.info_to_string info);
      (* --pinned: freeze the pre-index state NOW; the pin keeps that
         view (and its WAL-serial correspondence) alive across the
         inserts and the checkpoint below, then backs it up -- a
         consistent backup of "the store as it was before this save" *)
      let pin = Option.map (fun _ -> Store.Durable.pin d) pinned in
      index_files ~insert:(Store.Durable.insert d) ~whole files;
      Store.Durable.checkpoint d;
      (match (pinned, pin) with
      | Some dest, Some p ->
        let path = Store.Durable.backup d p ~dest in
        Printf.printf "pinned backup: pre-save state (epoch %d, WAL serial %d) -> %s\n"
          (Store.Durable.pin_epoch p) (Store.Durable.pin_serial p) path;
        Store.Durable.unpin d p
      | _ -> ());
      let docs = Dynamic_index.doc_count (Store.Durable.index d) in
      let serial = Store.Durable.wal_serial d in
      Store.Durable.close d;
      match Store.Snapshot.list ~dir with
      | (path, _) :: _ ->
        Printf.printf "saved %d document(s): %s (%d bytes, WAL serial %d)\n" docs path
          (Unix.stat path).Unix.st_size serial
      | [] -> Printf.printf "saved %d document(s) into %s (WAL serial %d)\n" docs dir serial)

(* dsdg open: crash recovery (newest valid snapshot + WAL tail replay)
   followed by the interactive query loop; mutations made in the loop
   keep flowing through the WAL. *)
let open_cmd dir variant backend sample tau jobs readers sync checkpoint_every retain =
  if retain < 0 then die_usage "--retain-epochs must be >= 0 (got %d)" retain;
  with_store_errors ~dir (fun () ->
      check_shard_layout ~dir ~shards:1;
      let config = store_config ~sync ~checkpoint_every ~jobs in
      let d, info =
        Store.Durable.open_ ~config ~variant:(variant_of_string variant)
          ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers
          ~retain_epochs:retain ~dir ()
      in
      print_endline (Store.Recovery.info_to_string info);
      Fun.protect
        ~finally:(fun () -> Store.Durable.close d)
        (fun () ->
          repl
            (repl_of_index ~insert:(Store.Durable.insert d) ~delete:(Store.Durable.delete d)
               (Store.Durable.index d))))

(* dsdg serve: the service plane. Recover the store, bind the socket,
   then park the main thread until SIGTERM/SIGINT (or a quit of the
   process): the graceful drain finishes in-flight requests, flushes
   the write queue through a final group commit, checkpoints and exits
   0 -- the next open replays nothing. *)
let serve_cmd dir socket host port variant backend sample tau jobs readers shards sync
    checkpoint_every max_batch max_frame max_conns timeout retain =
  if shards < 1 then die_usage "--shards must be >= 1 (got %d)" shards;
  if retain < 0 then die_usage "--retain-epochs must be >= 0 (got %d)" retain;
  if max_batch < 1 then die_usage "--max-batch must be >= 1 (got %d)" max_batch;
  if max_frame < 16 then die_usage "--max-frame must be >= 16 bytes (got %d)" max_frame;
  if max_conns < 1 then die_usage "--max-conns must be >= 1 (got %d)" max_conns;
  if timeout < 0. then die_usage "--timeout must be >= 0 seconds";
  let listen =
    match socket with Some path -> `Unix path | None -> `Tcp (host, port)
  in
  with_store_errors ~dir (fun () ->
      let config = store_config ~sync ~checkpoint_every ~jobs in
      (* the engine the server fronts: a plain durable store, or K
         shard stores behind one scatter-gather collection (the writer
         thread then fans each batch across the shard WALs, one group
         commit each) *)
      let engine, close_engine =
        if shards = 1 then begin
          check_shard_layout ~dir ~shards;
          let store, info =
            Store.Durable.open_ ~config ~variant:(variant_of_string variant)
              ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers
              ~retain_epochs:retain ~dir ()
          in
          print_endline (Store.Recovery.info_to_string info);
          (Serve.Server.engine_of_store store, fun () -> Store.Durable.close store)
        end
        else begin
          let sh =
            open_sharded ~config ~retain_epochs:retain ~variant ~backend ~sample ~tau ~jobs
              ~readers ~shards ~dir ()
          in
          (Serve.Server.engine_of_sharded sh, fun () -> Shard.Sharded_index.close sh)
        end
      in
      let sconfig =
        {
          Serve.Server.max_frame;
          max_batch;
          max_conns;
          read_timeout = timeout;
          write_timeout = timeout;
        }
      in
      let srv =
        try Serve.Server.start_engine ~config:sconfig ~engine listen
        with Unix.Unix_error (e, _, _) ->
          close_engine ();
          Printf.eprintf "dsdg: cannot bind %s: %s\n"
            (match listen with
            | `Unix p -> p
            | `Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
            (Unix.error_message e);
          exit 1
      in
      (match (listen, Serve.Server.port srv) with
      | `Unix path, _ -> Printf.printf "listening on unix socket %s\n%!" path
      | `Tcp (h, _), Some p -> Printf.printf "listening on %s:%d\n%!" h p
      | `Tcp (h, p), None -> Printf.printf "listening on %s:%d\n%!" h p);
      if shards > 1 then
        Printf.printf "sharded: %d shard stores under %s, scatter-gather queries\n%!" shards dir;
      Printf.printf "group commit: up to %d writes per fsync (--sync %s)\n%!" max_batch sync;
      List.iter
        (fun s ->
          Sys.set_signal s (Sys.Signal_handle (fun _ -> Serve.Server.request_stop srv)))
        [ Sys.sigterm; Sys.sigint ];
      Serve.Server.wait srv;
      Printf.printf "draining: finishing in-flight requests, checkpointing %s\n%!" dir;
      Serve.Server.stop srv;
      Printf.printf "served %d op(s); store checkpointed cleanly\n%!" (Serve.Server.ops_served srv))

(* dsdg load: closed-loop load generator against a running server.
   Human summary on stdout plus one BENCH JSON row appended to
   $DSDG_BENCH_JSON (default BENCH_RESULTS.json), same convention as
   bench/main.exe, so sweeps over --clients land in one results file. *)
let bench_json_row ~bench fields =
  let path =
    match Sys.getenv_opt "DSDG_BENCH_JSON" with Some p -> p | None -> "BENCH_RESULTS.json"
  in
  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "{\"bench\":\"%s\"" (escape bench));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":" (escape k));
      Buffer.add_string buf
        (match v with
        | `S s -> Printf.sprintf "\"%s\"" (escape s)
        | `I i -> string_of_int i
        | `F f -> if Float.is_nan f then "null" else Printf.sprintf "%.3f" f))
    fields;
  Buffer.add_string buf "}\n";
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Buffer.contents buf);
  close_out oc

let loadgen_cmd socket host port clients ops seed timeout shards w_insert w_delete w_search
    w_count w_extract =
  if shards < 1 then die_usage "--shards must be >= 1 (got %d)" shards;
  if clients < 1 then die_usage "--clients must be >= 1 (got %d)" clients;
  if ops < 1 then die_usage "--ops must be >= 1 (got %d)" ops;
  if timeout < 0. then die_usage "--timeout must be >= 0 seconds";
  if w_insert < 0 || w_delete < 0 || w_search < 0 || w_count < 0 || w_extract < 0 then
    die_usage "operation-mix weights must be >= 0";
  if w_insert + w_delete + w_search + w_count + w_extract <= 0 then
    die_usage "operation mix is empty: give at least one positive weight";
  let addr = match socket with Some path -> `Unix path | None -> `Tcp (host, port) in
  let mix =
    {
      Serve.Load_gen.insert = w_insert;
      delete = w_delete;
      search = w_search;
      count = w_count;
      extract = w_extract;
    }
  in
  let r =
    try Serve.Load_gen.run ~mix ~timeout addr ~clients ~ops ~seed
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "dsdg: cannot reach %s: %s\n"
        (match addr with `Unix p -> p | `Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
        (Unix.error_message e);
      exit 1
  in
  print_endline (Serve.Load_gen.report_to_string r);
  bench_json_row ~bench:"serve/load"
    [
      (* what the dialed server is sharded as, for sweep annotation --
         the generator itself is shard-agnostic *)
      ("shards", `I shards);
      ("clients", `I r.Serve.Load_gen.clients);
      ("ops", `I r.Serve.Load_gen.ops);
      ("errors", `I r.Serve.Load_gen.errors);
      ("writes", `I r.Serve.Load_gen.writes);
      ("queries", `I r.Serve.Load_gen.queries);
      ("elapsed_s", `F r.Serve.Load_gen.elapsed_s);
      ("qps", `F r.Serve.Load_gen.qps);
      ("p50_us", `F r.Serve.Load_gen.p50_us);
      ("p90_us", `F r.Serve.Load_gen.p90_us);
      ("p99_us", `F r.Serve.Load_gen.p99_us);
      ("p999_us", `F r.Serve.Load_gen.p999_us);
      ("max_us", `F r.Serve.Load_gen.max_us);
      ("write_p99_us", `F r.Serve.Load_gen.write_p99_us);
    ];
  if r.Serve.Load_gen.ops = 0 || r.Serve.Load_gen.errors > 0 then exit 1

(* dsdg follow: a WAL-shipped read replica of a running dsdg serve.
   Bootstraps --store DIR from the leader (snapshot over the wire if
   the leader compacted; sharded replicas start empty or from a pinned
   backup copied into DIR), then tails the replication streams.  With
   --socket/--port the replica also serves the full query grammar
   locally; mutations get a redirect error naming the leader.  SIGTERM
   stops tailing and closes the replica store cleanly -- the directory
   is an ordinary store, promotable with a plain `dsdg serve DIR`. *)
let follow_cmd from_addr from_socket dir socket host port variant backend sample tau seq retain
    poll =
  if retain < 0 then die_usage "--retain-epochs must be >= 0 (got %d)" retain;
  if poll <= 0. then die_usage "--poll must be > 0 seconds";
  let leader =
    match (from_socket, from_addr) with
    | Some _, Some _ -> die_usage "--from and --from-socket are mutually exclusive"
    | Some path, None -> `Unix path
    | None, Some hp -> (
      match String.rindex_opt hp ':' with
      | Some i -> (
        let h = String.sub hp 0 i in
        match int_of_string_opt (String.sub hp (i + 1) (String.length hp - i - 1)) with
        | Some p when p > 0 && h <> "" -> `Tcp (h, p)
        | _ -> die_usage "--from expects HOST:PORT (got %s)" hp)
      | None -> die_usage "--from expects HOST:PORT (got %s)" hp)
    | None, None -> die_usage "name the leader: --from HOST:PORT or --from-socket PATH"
  in
  with_store_errors ~dir (fun () ->
      let f =
        try
          Serve.Follower.start ~variant:(variant_of_string variant)
            ~backend:(backend_of_string backend) ~sample ~tau
            ~seq_backend:(seq_of_string seq) ~retain_epochs:retain ~poll ~leader ~dir ()
        with Failure msg ->
          Printf.eprintf "dsdg: %s\n" msg;
          exit 1
      in
      Printf.printf "following %s into %s%s\n%!"
        (match leader with `Unix p -> p | `Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
        dir
        (match Serve.Follower.replica f with
        | Serve.Follower.R_single _ -> ""
        | Serve.Follower.R_sharded sh ->
          Printf.sprintf " (sharded, K=%d)" (Shard.Sharded_index.shards sh));
      let srv =
        match (socket, port) with
        | Some path, _ -> Some (Serve.Server.start_engine ~engine:(Serve.Follower.engine f) (`Unix path))
        | None, Some p ->
          Some (Serve.Server.start_engine ~engine:(Serve.Follower.engine f) (`Tcp (host, p)))
        | None, None -> None
      in
      (match (srv, socket) with
      | Some _, Some path -> Printf.printf "replica serving on unix socket %s (read-only)\n%!" path
      | Some s, None ->
        Printf.printf "replica serving on %s:%d (read-only)\n%!" host
          (match Serve.Server.port s with Some p -> p | None -> 0)
      | None, _ -> ());
      let stop = Atomic.make false in
      List.iter
        (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set stop true)))
        [ Sys.sigterm; Sys.sigint ];
      let teardown () =
        (* stopping a server built on Follower.engine stops the
           follower and closes the replica store *)
        match srv with Some s -> Serve.Server.stop s | None -> Serve.Follower.stop f
      in
      let tick = ref 0 in
      let rec watch () =
        if Atomic.get stop then ()
        else
          match Serve.Follower.error f with
          | Some e ->
            Printf.eprintf "dsdg: replication stopped: %s\n" e;
            teardown ();
            exit 2
          | None ->
            if !tick mod 10 = 0 then begin
              let lag = Serve.Follower.lag f in
              Printf.printf "lag: %d record(s), %d epoch(s); applied %d; %s\n%!"
                lag.Serve.Follower.lg_serials lag.Serve.Follower.lg_epochs
                lag.Serve.Follower.lg_applied
                (if lag.Serve.Follower.lg_connected then "connected" else "reconnecting")
            end;
            incr tick;
            Thread.delay 0.2;
            watch ()
      in
      watch ();
      teardown ();
      Printf.printf "replica stopped cleanly at %s\n" dir)

let demo_cmd ops =
  let open Dsdg_workload in
  let st = Text_gen.rng 7 in
  let idx = Dynamic_index.create () in
  let live = ref [] in
  for _ = 1 to ops do
    if Random.State.float st 1.0 < 0.7 || !live = [] then
      live := Dynamic_index.insert idx (Text_gen.english_like st ~len:(30 + Random.State.int st 100)) :: !live
    else begin
      match !live with
      | id :: rest ->
        ignore (Dynamic_index.delete idx id);
        live := rest
      | [] -> ()
    end
  done;
  List.iter
    (fun w -> Printf.printf "count %-8S = %d\n" w (Dynamic_index.count idx w))
    [ "data"; "index"; "query" ];
  print_stats idx

(* Scripted churn workload + full observability dump: the living
   counterpart of DESIGN.md's "Observability" section. With --store the
   workload runs through the durable store, so the dump also shows the
   store scope: WAL appends/fsyncs, checkpoint latency, snapshot bytes. *)
(* The sharded variant of the stats workload: same churn, routed
   through a Sharded_index (in memory, or over K shard stores with
   --store), then the observability dump -- the "shard" scope shows
   scatter/gather and migration counters next to each shard's own
   core/store scopes. *)
let stats_sharded ~ops ~variant ~backend ~sample ~tau ~no_obs ~jobs ~readers ~shards ~store ~sync
    ~checkpoint_every ~seq =
  let open Dsdg_workload in
  let open Dsdg_obs in
  if no_obs then Obs.set_enabled false;
  let sh =
    match store with
    | None ->
      Shard.Sharded_index.create ~variant:(variant_of_string variant)
        ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers
        ~seq_backend:(seq_of_string seq) ~shards ()
    | Some dir ->
      with_store_errors ~dir (fun () ->
          let config = store_config ~sync ~checkpoint_every ~jobs in
          open_sharded ~seq ~config ~variant ~backend ~sample ~tau ~jobs ~readers ~shards ~dir ())
  in
  let st = Text_gen.rng 42 in
  let live = ref [] in
  let searches = ref 0 and hits = ref 0 in
  for i = 1 to ops do
    let r = Random.State.float st 1.0 in
    if r < 0.55 || !live = [] then
      live := Shard.Sharded_index.insert sh (Text_gen.english_like st ~len:(30 + Random.State.int st 120)) :: !live
    else if r < 0.8 then begin
      match !live with
      | id :: rest ->
        ignore (Shard.Sharded_index.delete sh id);
        if i mod 17 = 0 then ignore (Shard.Sharded_index.delete sh id);
        live := rest
      | [] -> ()
    end
    else begin
      incr searches;
      let p = if i mod 2 = 0 then "data" else "query" in
      hits := !hits + Shard.Sharded_index.count sh p
    end;
    (* stir documents between shards mid-workload so migration shows
       up in the dump *)
    if i mod 251 = 0 then ignore (Shard.Sharded_index.rebalance_hottest sh)
  done;
  Printf.printf "workload  : %d ops (%d searches, %d pattern hits) across %d shard(s)\n" ops
    !searches !hits shards;
  print_sharded_stats sh;
  Printf.printf "epochs    : [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int (Shard.Sharded_index.epoch_vector sh))));
  (* store mode: the replication coordinates -- per-shard WAL serials
     next to the composite epoch vector (the last epoch component is
     the mapping version) *)
  if Shard.Sharded_index.backing_stores sh <> None then begin
    Printf.printf "wal       : [%s] (per-shard serials)\n"
      (String.concat "; "
         (Array.to_list (Array.map string_of_int (Shard.Sharded_index.wal_serials sh))));
    Printf.printf "meta      : %d placement record(s)\n" (Shard.Sharded_index.meta_records sh)
  end;
  print_newline ();
  Shard.Sharded_index.close sh;
  if no_obs then print_endline "observability disabled (--no-obs): no counters recorded"
  else List.iter (fun s -> print_string (Obs.render s)) (Obs.registered ())

let stats_cmd ops variant backend sample tau no_obs jobs readers shards store sync
    checkpoint_every seq =
  if shards < 1 then die_usage "--shards must be >= 1 (got %d)" shards;
  if shards > 1 then
    stats_sharded ~ops ~variant ~backend ~sample ~tau ~no_obs ~jobs ~readers ~shards ~store ~sync
      ~checkpoint_every ~seq
  else
  let open Dsdg_workload in
  let open Dsdg_obs in
  if no_obs then Obs.set_enabled false;
  let durable =
    match store with
    | None -> None
    | Some dir ->
      Some
        (with_store_errors ~dir (fun () ->
             let config = store_config ~sync ~checkpoint_every ~jobs in
             fst
               (Store.Durable.open_ ~config ~variant:(variant_of_string variant)
                  ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers
                  ~seq_backend:(seq_of_string seq) ~dir ())))
  in
  let idx =
    match durable with
    | Some d -> Store.Durable.index d
    | None ->
      Dynamic_index.create ~variant:(variant_of_string variant)
        ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers
        ~seq_backend:(seq_of_string seq) ()
  in
  let ins, del =
    match durable with
    | Some d -> (Store.Durable.insert d, Store.Durable.delete d)
    | None -> (Dynamic_index.insert idx, Dynamic_index.delete idx)
  in
  let st = Text_gen.rng 42 in
  let live = ref [] in
  let searches = ref 0 and hits = ref 0 in
  for i = 1 to ops do
    let r = Random.State.float st 1.0 in
    if r < 0.55 || !live = [] then
      live := ins (Text_gen.english_like st ~len:(30 + Random.State.int st 120)) :: !live
    else if r < 0.8 then begin
      (* delete a random live doc; occasionally retry a dead id to
         exercise the failed-delete path *)
      match !live with
      | id :: rest ->
        ignore (del id);
        if i mod 17 = 0 then ignore (del id);
        live := rest
      | [] -> ()
    end
    else begin
      incr searches;
      let p = if i mod 2 = 0 then "data" else "query" in
      let c =
        if readers > 0 then Dynamic_index.query idx (fun v -> Dynamic_index.view_count v p)
        else Dynamic_index.count idx p
      in
      hits := !hits + c
    end
  done;
  Printf.printf "workload  : %d ops (%d searches, %d pattern hits)\n" ops !searches !hits;
  print_stats idx;
  let syms = Dynamic_index.total_symbols idx in
  if syms > 0 then begin
    (* Entropy budget: reconstruct the live text through the index itself
       and compare measured bits/symbol with H0 and H2. *)
    let buf = Buffer.create syms in
    List.iter
      (fun id ->
        (* documents have unknown length: binary-search down from a
           generous cap until extract accepts the range *)
        let rec grab len =
          if len >= 1 then
            match Dynamic_index.extract idx ~doc:id ~off:0 ~len with
            | Some s -> Buffer.add_string buf s
            | None -> grab (len / 2)
        in
        grab 4096)
      !live;
    let text = Buffer.contents buf in
    if String.length text > 0 then begin
      let open Dsdg_entropy in
      Printf.printf "entropy   : H0=%.3f H2=%.3f bits/symbol (paper budget nHk + o(n))\n"
        (Entropy.h0 text) (Entropy.hk ~k:2 text)
    end
  end;
  print_newline ();
  (* join worker domains before rendering so the executor counters
     (exec_submitted/completed/..., queue depth, wall/handoff latency)
     are final; they live in the same scope as the transformation's *)
  (match durable with
  | Some d ->
    Printf.printf "store     : %s (next WAL serial %d)\n" (Store.Durable.dir d)
      (Store.Durable.wal_serial d);
    Store.Durable.close d
  | None -> Dynamic_index.close idx);
  if no_obs then print_endline "observability disabled (--no-obs): no counters recorded"
  else begin
    print_string (Obs.render (Dynamic_index.obs_scope idx));
    List.iter (fun s -> print_string (Obs.render s)) (Obs.registered ())
  end

(* Differential fuzzing: the CLI face of Dsdg_check (DESIGN.md section 6).
   A failing stream is shrunk to a minimal trace, saved, and the replay
   one-liner printed -- a CI failure reproduces with a single command.
   With --store DIR the same op streams instead drive the
   kill-and-recover sweep of Dsdg_store.Kill_check: crash (optionally
   tearing the final WAL record) at every stride-th op, recover, and
   diff the recovered index against the model. *)
let fuzz_cmd seed ops streams variant backend sample tau fault profile replay trace_dir jobs
    readers shards store sync checkpoint_every kill_stride seq follow rel rel_backend =
  let open Dsdg_check in
  (* validate enums up front so a typo is a usage error (124), not an
     internal crash from deep inside the runner *)
  if variant <> "all" then ignore (variant_of_string variant);
  if backend <> "all" then ignore (backend_of_string backend);
  let seq_kind = seq_of_string seq in
  if shards < 1 then die_usage "--shards must be >= 1 (got %d)" shards;
  let variant = normalize_variant variant in
  let load_trace file =
    try Trace.load file
    with Trace.Parse_error e ->
      prerr_endline (Trace.parse_error_message ~file e);
      exit 2
  in
  (* A trace recorded under concurrency or sharding does not reproduce
     under a different shape: silently replaying it with the flags
     omitted would "pass" without testing anything. Mismatch (including
     omission) is a usage error. *)
  let enforce_hint file =
    let h = Trace.load_hint file in
    let need flag got = function
      | Some want when got <> want ->
        die_usage "trace %s was recorded with --%s %d (this invocation has --%s %d); pass --%s %d"
          file flag want flag got flag want
      | _ -> ()
    in
    need "shards" shards h.Trace.h_shards;
    need "readers" readers h.Trace.h_readers;
    need "jobs" jobs h.Trace.h_jobs;
    (match h.Trace.h_rel with
    | Some want ->
      die_usage
        "trace %s is a relation trace (recorded with --rel --rel-backend %s); replay it with \
         dsdg fuzz --rel --rel-backend %s --replay %s"
        file want want file
    | None -> ());
    match h.Trace.h_seq with
    | Some want when want <> seq ->
      die_usage
        "trace %s was recorded with --seq-backend %s (this invocation has --seq-backend %s); \
         pass --seq-backend %s"
        file want seq want
    | _ -> ()
  in
  match store with
  | _ when rel ->
    (* relation-backend differential mode: streams of relation ops
       fanned over the adjacency backends (str wavelet-tree pair list,
       k2 quadtree, or both) and cross-checked against the naive
       pair-set model after every op *)
    if store <> None || follow then
      die_usage "--rel is an in-memory differential mode; it does not combine with --store or --follow";
    let spec =
      match Rel_check.spec_of_string rel_backend with
      | Some s -> s
      | None -> die_usage "unknown --rel-backend: %s (expected str | k2 | both)" rel_backend
    in
    let kinds = Rel_check.kinds_of_spec spec in
    let knames = String.concat "," (List.map Binrel.Rel_backend.kind_to_string kinds) in
    let fault_v =
      match fault with
      | "none" -> None
      | s -> (
        match Rel_check.fault_of_string s with
        | Some f -> Some f
        | None -> die_usage "--rel supports --fault none | rel-lost-remove, not %s" s)
    in
    let fail_with ~seed_used failure shrunk =
      print_string (Rel_check.report ?seed:seed_used ~failure ~shrunk ());
      let dir = match trace_dir with Some d -> d | None -> Filename.get_temp_dir_name () in
      let path =
        Filename.concat dir
          (match seed_used with
          | Some s -> Printf.sprintf "dsdg-fuzz-rel-seed%d.trace" s
          | None -> "dsdg-fuzz-rel-replay.trace")
      in
      Rel_check.save ?fault:fault_v ~spec path shrunk;
      Printf.printf
        "minimal trace saved to %s\nreplay: dsdg fuzz --rel --replay %s --rel-backend %s%s\n"
        path path
        (Rel_check.spec_to_string spec)
        (match fault_v with Some f -> " --fault " ^ Rel_check.fault_to_string f | None -> "");
      exit 1
    in
    (match replay with
    | Some file ->
      (* a relation trace records which backend shape it diverged
         under; replaying it against a different one (or as a document
         trace) would "pass" without testing anything *)
      (match (Trace.load_hint file).Trace.h_rel with
      | None ->
        die_usage
          "trace %s is not a relation trace (no rel= hint); drop --rel, or replay a trace \
           saved by dsdg fuzz --rel"
          file
      | Some want when want <> Rel_check.spec_to_string spec ->
        die_usage
          "trace %s was recorded with --rel-backend %s (this invocation has --rel-backend %s); \
           pass --rel-backend %s"
          file want rel_backend want
      | Some _ -> ());
      let trace =
        try Rel_check.load file
        with Trace.Parse_error e ->
          prerr_endline (Trace.parse_error_message ~file e);
          exit 2
      in
      Printf.printf "replaying %d relation op(s) over {%s}\n%!" (List.length trace) knames;
      (match Rel_check.run_ops ?fault:fault_v ~kinds trace with
      | Ok () ->
        Printf.printf "replay OK: every backend agrees with the pair-set model after every op\n"
      | Error f ->
        let prefix = List.filteri (fun i _ -> i < f.Rel_check.rf_step) trace in
        let shrunk = Rel_check.shrink ?fault:fault_v ~kinds prefix in
        fail_with ~seed_used:None f shrunk)
    | None ->
      Printf.printf "rel fuzzing %d stream(s) x %d ops over {%s}%s\n%!" streams ops knames
        (match fault_v with
        | Some f -> Printf.sprintf " with planted fault %s" (Rel_check.fault_to_string f)
        | None -> "");
      for s = 0 to streams - 1 do
        let stream_seed = seed + s in
        match Rel_check.run_stream ?fault:fault_v ~kinds ~seed:stream_seed ~ops () with
        | Rel_check.Pass -> if streams > 1 then Printf.printf "stream seed=%d: ok\n%!" stream_seed
        | Rel_check.Fail { failure; shrunk; trace = _ } ->
          fail_with ~seed_used:(Some stream_seed) failure shrunk
      done;
      Printf.printf
        "rel fuzz OK: %d stream(s) x %d ops, backends {%s} byte-identical to the pair-set model\n"
        streams ops knames)
  | _ when follow ->
    (* leader/follower differential mode: a real cluster per target --
       leader store + server on an ephemeral port, WAL-shipped replica,
       convergence checks at quiesce points, then the failover sweep
       (quiesce, kill the leader, promote the follower, verify every
       acked write, keep writing on the promoted store) *)
    let dir =
      match store with
      | Some d -> d
      | None -> die_usage "--follow needs --store DIR as cluster scratch space"
    in
    let fault_v =
      match fault with
      | "none" -> None
      | "skip-top-clean" -> Some `Skip_top_clean
      | s ->
        die_usage
          "--follow supports --fault none | skip-top-clean (planted in the replica's index, \
           proving the divergence oracle has teeth), not %s"
          s
    in
    let sync_v =
      match Store.Wal.sync_of_string sync with
      | Ok s -> s
      | Error msg -> die_usage "--sync: %s" msg
    in
    let sweep_ops =
      match replay with
      | Some file ->
        enforce_hint file;
        load_trace file
      | None -> Opgen.generate ~profile:(profile_of_string profile) ~seed ~ops ()
    in
    let counts = List.sort_uniq compare [ 1; shards ] in
    let variants =
      match variant with "all" -> [ "amortized"; "loglog"; "worst-case" ] | v -> [ v ]
    in
    let backends = match backend with "all" -> [ "fm"; "sa"; "csa" ] | b -> [ b ] in
    let n = List.length sweep_ops in
    let stride = if kill_stride > 0 then kill_stride else max 1 (n / 4) in
    Printf.printf
      "leader/follower: %d op(s), K in {%s}, quiesce every 16, failover kill every %d op(s), \
       %d target(s), scratch under %s\n%!"
      n
      (String.concat "," (List.map string_of_int counts))
      stride
      (List.length variants * List.length backends * List.length counts)
      dir;
    let failed = ref false in
    List.iter
      (fun v ->
        List.iter
          (fun b ->
            List.iter
              (fun k ->
                let name = Printf.sprintf "%s/%s K=%d" v b k in
                let scratch = Filename.concat dir (Printf.sprintf "follow-%s-%s-k%d" v b k) in
                let conv =
                  Serve.Repl_check.convergence ~variant:(variant_of_string v)
                    ~backend:(backend_of_string b) ~sample ~tau ~seq_backend:seq_kind
                    ?fault:fault_v ~shards:k ~sync:sync_v
                    ~checkpoint_every:(if checkpoint_every > 0 then checkpoint_every else 7)
                    ~dir:scratch ~ops:sweep_ops ()
                in
                Printf.printf "%-24s %-12s %s\n%!" name "converge"
                  (Serve.Repl_check.outcome_to_string conv);
                if conv.Serve.Repl_check.rc_failures <> [] then begin
                  failed := true;
                  (* a planted fault diverges by design; the shrinker
                     replays without it, so there is nothing to minimize *)
                  if k = 1 && fault_v = None then begin
                    let shrunk =
                      Serve.Repl_check.shrink ~variant:(variant_of_string v)
                        ~backend:(backend_of_string b) ~sample ~tau ~seq_backend:seq_kind
                        ~sync:sync_v ~dir:scratch sweep_ops
                    in
                    let tdir =
                      match trace_dir with Some d -> d | None -> Filename.get_temp_dir_name ()
                    in
                    let path = Filename.concat tdir "dsdg-fuzz-follow.trace" in
                    Trace.save
                      ~hint:
                        {
                          Trace.no_hint with
                          h_seq = (if seq <> "avl" then Some seq else None);
                        }
                      path shrunk;
                    Printf.printf
                      "minimal diverging trace (%d ops) saved to %s\nreplay: dsdg fuzz --follow \
                       --replay %s --store %s --variant %s --backend %s\n"
                      (List.length shrunk) path path dir v b
                  end
                end
                (* a planted fault makes failover pointless (the replica
                   is already known-corrupt); otherwise prove promotion *)
                else if fault_v = None then begin
                  let fo =
                    Serve.Repl_check.failover_sweep ~variant:(variant_of_string v)
                      ~backend:(backend_of_string b) ~sample ~tau ~seq_backend:seq_kind
                      ~shards:k ~sync:sync_v
                      ~checkpoint_every:(if checkpoint_every > 0 then checkpoint_every else 7)
                      ~torn:true ~stride ~dir:scratch ~ops:sweep_ops ()
                  in
                  Printf.printf "%-24s %-12s %s\n%!" name "failover"
                    (Store.Kill_check.outcome_to_string fo);
                  if fo.Store.Kill_check.kc_failures <> [] then failed := true
                end)
              counts)
          backends)
      variants;
    if !failed then exit 1;
    Printf.printf
      "leader/follower OK: every quiesce point converged and every promoted follower re-served \
       all acked writes\n"
  | Some dir when shards > 1 ->
    (* sharded kill-and-recover: the stride sweep plus the mid-split
       migration sweep, per selected variant x backend *)
    let torn =
      match fault with
      | "none" -> false
      | "torn-write" -> true
      | s ->
        die_usage "--store kill-and-recover mode supports --fault none | torn-write, not %s" s
    in
    let sweep_ops =
      match replay with
      | Some file ->
        enforce_hint file;
        load_trace file
      | None -> Opgen.generate ~profile:(profile_of_string profile) ~seed ~ops ()
    in
    let config =
      store_config ~sync
        ~checkpoint_every:(if checkpoint_every > 0 then checkpoint_every else 7)
        ~jobs
    in
    let variants =
      match variant with "all" -> [ "amortized"; "loglog"; "worst-case" ] | v -> [ v ]
    in
    let backends = match backend with "all" -> [ "fm"; "sa"; "csa" ] | b -> [ b ] in
    let n = List.length sweep_ops in
    let stride = if kill_stride > 0 then kill_stride else max 1 (n / 16) in
    Printf.printf
      "sharded kill-and-recover: K=%d, %d op(s), crash every %d op(s)%s plus every mid-split \
       kill point, %d target(s), scratch under %s\n%!"
      shards n stride
      (if torn then " with torn final WAL records" else "")
      (List.length variants * List.length backends)
      dir;
    let failed = ref false in
    List.iter
      (fun v ->
        List.iter
          (fun b ->
            let show name o =
              Printf.printf "%-20s %-10s %s\n%!" (v ^ "/" ^ b) name
                (Store.Kill_check.outcome_to_string o);
              if o.Store.Kill_check.kc_failures <> [] then failed := true
            in
            let scratch = Filename.concat dir (Printf.sprintf "shardkill-%s-%s" v b) in
            show "kill"
              (Shard.Shard_check.kill_sweep ~variant:(variant_of_string v)
                 ~backend:(backend_of_string b) ~sample ~tau ~seq_backend:seq_kind ~config ~torn
                 ~stride ~shards ~dir:scratch ~ops:sweep_ops ());
            let scratch = Filename.concat dir (Printf.sprintf "shardsplit-%s-%s" v b) in
            show "split"
              (Shard.Shard_check.split_kill_sweep ~variant:(variant_of_string v)
                 ~backend:(backend_of_string b) ~sample ~tau ~seq_backend:seq_kind ~config ~torn
                 ~shards ~dir:scratch ~ops:sweep_ops ()))
          backends)
      variants;
    if !failed then exit 1;
    Printf.printf
      "sharded kill-and-recover OK: every crash and split kill point re-served all acked writes \
       exactly once\n"
  | Some dir ->
    (* kill-and-recover mode: the scheduling faults do not apply here;
       the planted fault is the torn write *)
    let torn =
      match fault with
      | "none" -> false
      | "torn-write" -> true
      | s ->
        die_usage "--store kill-and-recover mode supports --fault none | torn-write, not %s" s
    in
    let sweep_ops =
      match replay with
      | Some file ->
        enforce_hint file;
        load_trace file
      | None -> Opgen.generate ~profile:(profile_of_string profile) ~seed ~ops ()
    in
    let config =
      store_config ~sync
        ~checkpoint_every:(if checkpoint_every > 0 then checkpoint_every else 7)
        ~jobs
    in
    let variants =
      match variant with "all" -> [ "amortized"; "loglog"; "worst-case" ] | v -> [ v ]
    in
    let backends = match backend with "all" -> [ "fm"; "sa"; "csa" ] | b -> [ b ] in
    let n = List.length sweep_ops in
    let stride = if kill_stride > 0 then kill_stride else max 1 (n / 16) in
    Printf.printf
      "kill-and-recover: %d op(s), crash every %d op(s)%s, %d target(s), scratch under %s\n%!" n
      stride
      (if torn then " with a torn final WAL record" else "")
      (List.length variants * List.length backends)
      dir;
    let failed = ref false in
    List.iter
      (fun v ->
        List.iter
          (fun b ->
            let scratch = Filename.concat dir (Printf.sprintf "kill-%s-%s" v b) in
            let o =
              Store.Kill_check.sweep ~variant:(variant_of_string v) ~backend:(backend_of_string b)
                ~sample ~tau ~seq_backend:seq_kind ~config ~torn ~stride ~dir:scratch
                ~ops:sweep_ops ()
            in
            Printf.printf "%-20s %s\n%!" (v ^ "/" ^ b) (Store.Kill_check.outcome_to_string o);
            if o.Store.Kill_check.kc_failures <> [] then failed := true)
          backends)
      variants;
    if !failed then exit 1;
    Printf.printf "kill-and-recover OK: every crash point recovered to the model\n"
  | None when shards > 1 ->
    (* shard-aware differential matrix: one op stream fanned over
       K in {1, 2, shards}, every answer compared against the model
       AND the K=1 baseline index, per selected variant x backend *)
    if fault <> "none" then
      die_usage
        "sharded fuzzing checks the sharding layer itself; planted faults are not supported \
         with --shards (got --fault %s)"
        fault;
    let counts = List.sort_uniq compare [ 1; min 2 shards; shards ] in
    let pairs = Runner.select_targets ~variant ~backend () in
    let mk_config tg =
      {
        Shard.Shard_check.sc_variant = tg.Runner.tg_variant;
        sc_backend = tg.Runner.tg_backend;
        sc_sample = sample;
        sc_tau = tau;
        sc_jobs = jobs;
        sc_readers = readers;
        sc_seq = seq_kind;
        sc_shard_counts = counts;
      }
    in
    let fail_with ~seed_used ~config ~pair failure shrunk =
      Printf.printf "pair   : %s\n" pair;
      print_string (Shard.Shard_check.report ?seed:seed_used ~failure ~shrunk ());
      let dir = match trace_dir with Some d -> d | None -> Filename.get_temp_dir_name () in
      let path =
        Filename.concat dir
          (match seed_used with
          | Some s -> Printf.sprintf "dsdg-fuzz-shard-seed%d.trace" s
          | None -> "dsdg-fuzz-shard-replay.trace")
      in
      Trace.save ~hint:(Shard.Shard_check.hint_of_config config) path shrunk;
      Printf.printf
        "minimal trace saved to %s\nreplay: dsdg fuzz --replay %s --shards %d --variant %s \
         --backend %s%s%s\n"
        path path shards variant backend
        (if jobs > 0 then Printf.sprintf " --jobs %d" jobs else "")
        ((if readers > 0 then Printf.sprintf " --readers %d" readers else "")
        ^ if seq <> "avl" then " --seq-backend " ^ seq else "");
      exit 1
    in
    let knames = String.concat "," (List.map string_of_int counts) in
    (match replay with
    | Some file ->
      enforce_hint file;
      let trace = load_trace file in
      Printf.printf "replaying %d ops over K in {%s}, %d variant/backend pair(s)\n%!"
        (List.length trace) knames (List.length pairs);
      List.iter
        (fun tg ->
          let config = mk_config tg in
          match Shard.Shard_check.run_trace ~config trace with
          | Ok () -> ()
          | Error f ->
            let prefix = List.filteri (fun i _ -> i < f.Shard.Shard_check.sf_step) trace in
            let shrunk = Shard.Shard_check.shrink ~config prefix in
            fail_with ~seed_used:None ~config ~pair:tg.Runner.tg_name f shrunk)
        pairs;
      Printf.printf "replay OK: every shard count agrees with the model and the K=1 baseline\n"
    | None ->
      Printf.printf "shard fuzzing %d stream(s) x %d ops, K in {%s}, %d variant/backend pair(s)\n%!"
        streams ops knames (List.length pairs);
      let profile = profile_of_string profile in
      for s = 0 to streams - 1 do
        let stream_seed = seed + s in
        List.iter
          (fun tg ->
            let config = mk_config tg in
            match Shard.Shard_check.run_stream ~config ~profile ~seed:stream_seed ~ops () with
            | Shard.Shard_check.Pass -> ()
            | Shard.Shard_check.Fail { failure; shrunk; _ } ->
              fail_with ~seed_used:(Some stream_seed) ~config ~pair:tg.Runner.tg_name failure
                shrunk)
          pairs;
        if streams > 1 then Printf.printf "stream seed=%d: ok\n%!" stream_seed
      done;
      Printf.printf
        "shard fuzz OK: %d stream(s) x %d ops, K in {%s}, byte-identical to the model and the \
         K=1 baseline\n"
        streams ops knames)
  | None ->
    let targets = Runner.select_targets ~variant ~backend () in
    let config =
      {
        Runner.default_config with
        Runner.sample;
        tau;
        jobs;
        readers;
        seq = seq_kind;
        fault =
          (match fault with
          | "none" -> None
          | "skip-top-clean" -> Some `Skip_top_clean
          | "worker-crash" -> Some `Worker_crash
          | "stale-epoch" -> Some `Stale_epoch
          | "torn-write" ->
            die_usage
              "--fault torn-write plants a half-written WAL record in the durable store; add --store DIR"
          | s -> die_usage "unknown fault: %s" s);
      }
    in
    if config.Runner.fault = Some `Worker_crash && jobs = 0 then
      die_usage "--fault worker-crash requires --jobs >= 1 (it sabotages the pooled executor)";
    if config.Runner.fault = Some `Stale_epoch && readers = 0 then
      die_usage
        "--fault stale-epoch requires --readers >= 1 (it breaks only the read plane, which direct queries never touch)";
    let profile = profile_of_string profile in
    let tnames = String.concat ", " (List.map (fun t -> t.Runner.tg_name) targets) in
    let fail_with ~seed_used failure shrunk =
      print_string (Runner.report ?seed:seed_used ~failure ~shrunk ());
      let dir = match trace_dir with Some d -> d | None -> Filename.get_temp_dir_name () in
      let path =
        Filename.concat dir
          (match seed_used with
          | Some s -> Printf.sprintf "dsdg-fuzz-seed%d.trace" s
          | None -> "dsdg-fuzz-replay.trace")
      in
      Trace.save
        ~hint:
          {
            Trace.no_hint with
            h_readers = (if readers > 0 then Some readers else None);
            h_jobs = (if jobs > 0 then Some jobs else None);
            h_seq = (if seq <> "avl" then Some seq else None);
          }
        path shrunk;
      Printf.printf "minimal trace saved to %s\nreplay: dsdg fuzz --replay %s --variant %s --backend %s%s%s%s%s\n"
        path path variant backend
        (if config.Runner.fault <> None then " --fault " ^ fault else "")
        (if jobs > 0 then Printf.sprintf " --jobs %d" jobs else "")
        (if readers > 0 then Printf.sprintf " --readers %d" readers else "")
        (if seq <> "avl" then " --seq-backend " ^ seq else "");
      exit 1
    in
    (match replay with
    | Some file ->
      enforce_hint file;
      let trace = load_trace file in
      Printf.printf "replaying %d ops from %s against %s\n%!" (List.length trace) file tnames;
      (match Runner.run_trace ~config ~targets trace with
      | Ok () -> Printf.printf "replay OK: all targets agree with the model, all invariants hold\n"
      | Error f ->
        let prefix = List.filteri (fun i _ -> i < f.Runner.f_step) trace in
        let shrunk = Runner.shrink ~config ~targets prefix in
        fail_with ~seed_used:None f shrunk)
    | None ->
      Printf.printf "fuzzing %d stream(s) x %d ops against %s\n%!" streams ops tnames;
      for s = 0 to streams - 1 do
        let stream_seed = seed + s in
        match Runner.run_stream ~config ~profile ~targets ~seed:stream_seed ~ops () with
        | Runner.Pass ->
          if streams > 1 then Printf.printf "stream seed=%d: ok\n%!" stream_seed
        | Runner.Fail { failure; shrunk; _ } -> fail_with ~seed_used:(Some stream_seed) failure shrunk
      done;
      Printf.printf "fuzz OK: %d stream(s) x %d ops, %d target(s), model + invariants clean\n" streams
        ops (List.length targets))

(* Graph workload driver: the CLI face of the compressed dynamic graph
   (DESIGN.md section 15). Builds a web-crawl-shaped edge stream (or
   re-ingests a saved pair set) into the chosen adjacency backend, runs
   neighbor scans and BFS traversals, and prints throughput and
   bits/edge. The saved artifact is the bare pair set (Codec relation
   container): like --seq-backend, the adjacency backend is a runtime
   choice and is never persisted. *)
let graph_cmd nodes edges seed rel_backend tau queries save_path load_path =
  let kind = rel_kind_of_string rel_backend in
  if tau < 1 then die_usage "--tau must be >= 1 (got %d)" tau;
  if queries < 0 then die_usage "--queries must be >= 0 (got %d)" queries;
  let module G = Binrel.Digraph in
  let module Gen = Dsdg_workload.Graph_gen in
  let st = Random.State.make [| seed; 0x67af |] in
  let now () = Unix.gettimeofday () in
  let stream, g, build_s =
    match load_path with
    | Some file ->
      let pairs =
        try Store.Codec.read_relation file
        with Store.Codec.Corrupt { file; section; reason } ->
          Printf.eprintf "%s: corrupt %S section: %s\n" file section reason;
          exit 2
      in
      let t0 = now () in
      let g = G.of_edges ~tau ~backend:kind pairs in
      Printf.printf "loaded %d edge(s) from %s\n" (G.edge_count g) file;
      (Array.of_list pairs, g, now () -. t0)
    | None ->
      if nodes < 2 then die_usage "--nodes must be >= 2 (got %d)" nodes;
      if edges < 1 then die_usage "--edges must be >= 1 (got %d)" edges;
      let stream = Gen.web_crawl st ~nodes ~edges in
      let g = G.create ~tau ~backend:kind () in
      let t0 = now () in
      Array.iter (fun (u, v) -> ignore (G.add_edge g u v)) stream;
      (stream, g, now () -. t0)
  in
  let live = G.edge_count g in
  Printf.printf "backend %s: %d live edge(s), built in %.2fs (%.0f inserts/s)\n" rel_backend live
    build_s
    (float_of_int (Array.length stream) /. (build_s +. 1e-9));
  if Array.length stream = 0 then die_usage "empty graph: nothing to query";
  (* neighbor scans: out-degree-biased sources, forward and reverse *)
  let nq = Gen.neighbor_queries st ~edges:stream ~count:(max 1 queries) in
  let scanned = ref 0 in
  let t0 = now () in
  Array.iter
    (fun u ->
      G.iter_successors g u ~f:(fun _ -> incr scanned);
      G.iter_predecessors g u ~f:(fun _ -> incr scanned))
    nq;
  let scan_s = now () -. t0 in
  Printf.printf "neighbor scans: %d source(s), %d edge(s) touched, %.0f edges/s\n"
    (Array.length nq) !scanned
    (float_of_int !scanned /. (scan_s +. 1e-9));
  (* BFS over successor lists from edge-biased sources *)
  let sources = Gen.bfs_sources st ~edges:stream ~count:(max 1 (queries / 10)) in
  let visited_total = ref 0 in
  let t0 = now () in
  Array.iter
    (fun src ->
      let seen = Hashtbl.create 256 in
      let q = Queue.create () in
      Hashtbl.replace seen src ();
      Queue.push src q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        incr visited_total;
        G.iter_successors g u ~f:(fun v ->
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.replace seen v ();
              Queue.push v q
            end)
      done)
    sources;
  let bfs_s = now () -. t0 in
  Printf.printf "bfs: %d traversal(s), %d node visit(s), %.0f nodes/s\n" (Array.length sources)
    !visited_total
    (float_of_int !visited_total /. (bfs_s +. 1e-9));
  (* churn: delete then re-insert a stride of the stream *)
  let stride = max 1 (Array.length stream / 1000) in
  let churned = ref 0 in
  let t0 = now () in
  Array.iteri
    (fun i (u, v) ->
      if i mod stride = 0 then begin
        ignore (G.remove_edge g u v);
        ignore (G.add_edge g u v);
        churned := !churned + 2
      end)
    stream;
  let churn_s = now () -. t0 in
  Printf.printf "churn: %d update(s), %.0f updates/s\n" !churned
    (float_of_int !churned /. (churn_s +. 1e-9));
  let bits = G.space_bits g in
  let s = G.stats g in
  Printf.printf "space: %d bits total, %.1f bits/edge (merges %d, purges %d, rebuilds %d, grows %d)\n"
    bits
    (float_of_int bits /. float_of_int (max 1 live))
    s.Binrel.Rel_backend.merges s.Binrel.Rel_backend.purges s.Binrel.Rel_backend.global_rebuilds
    s.Binrel.Rel_backend.grows;
  match save_path with
  | Some path ->
    Store.Codec.write_relation path (G.edges g);
    Printf.printf "saved %d edge(s) to %s (pair set only; reopen with either --rel-backend)\n"
      live path
  | None -> ()

let files_arg = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")
let whole_arg = Arg.(value & flag & info [ "whole" ] ~doc:"Index whole files instead of lines.")
let variant_arg =
  Arg.(value & opt string "worst-case"
       & info [ "variant" ] ~doc:"amortized | loglog (alias: t3, the Transformation 3 doubling schedule) | worst-case")
let backend_arg = Arg.(value & opt string "fm" & info [ "backend" ] ~doc:"fm | sa | csa")
let sample_arg = Arg.(value & opt int 8 & info [ "sample" ] ~doc:"SA sampling rate s.")
let tau_arg = Arg.(value & opt int 8 & info [ "tau" ] ~doc:"Lazy-deletion threshold tau.")
let ops_arg = Arg.(value & opt int 500 & info [ "ops" ] ~doc:"Demo operations.")
let jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs" ]
           ~doc:"Background-rebuild worker domains (0 = deterministic synchronous mode). With --store, any value >= 1 also moves checkpoint serialization onto a worker domain.")

let readers_arg =
  Arg.(value & opt int 0
       & info [ "readers" ]
           ~doc:"Reader-pool domains serving queries from the latest published snapshot (0 = queries run on the caller's domain).")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"K"
           ~doc:"Hash-partition documents across $(docv) index shards (each with its own writer path, executor jobs, reader pool and, with --store, durable sub-store); queries scatter-gather across the shard views. For fuzz, fans the op stream over shard counts {1, 2, $(docv)} and differentially compares against the model and the K=1 index (with --store: sharded kill + mid-split kill sweeps). For load, annotates the BENCH row with the dialed server's shard count.")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Durable store directory: recover on open, write-ahead-log every mutation. For fuzz, switches to the kill-and-recover sweep using DIR as scratch space.")

let sync_arg =
  Arg.(value & opt string "always"
       & info [ "sync" ] ~docv:"POLICY"
           ~doc:"WAL fsync policy: always | never | N (fsync every N records).")

let checkpoint_every_arg =
  Arg.(value & opt int 0
       & info [ "checkpoint-every" ] ~docv:"K"
           ~doc:"Snapshot the index and compact the WAL every K updates (0 = never automatically; fuzz --store defaults to 7).")

let seq_backend_arg =
  Arg.(value & opt string "avl"
       & info [ "seq-backend" ] ~docv:"NAME"
           ~doc:"Dynamic-sequence substrate for every index structure: avl (balanced-tree bitvectors) | spsi (B-tree searchable partial sums with word-packed leaves). A runtime choice, never persisted: a store written under one backend reopens under the other.")

let retain_epochs_arg =
  Arg.(value & opt int 0
       & info [ "retain-epochs" ] ~docv:"N"
           ~doc:"Keep the $(docv) most recently published views resolvable for point-in-time reads (interactive ~EPOCH ?PAT / ~EPOCH #PAT); 0 retains only the live view. Pinned views survive eviction regardless.")

let store_dir_pos =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Store directory.")

let save_files_arg = Arg.(non_empty & pos_right 0 file [] & info [] ~docv:"FILE")

let index_t =
  Cmd.v (Cmd.info "index" ~doc:"Index files and answer queries interactively")
    Term.(
      const index_cmd $ files_arg $ whole_arg $ variant_arg $ backend_arg $ sample_arg $ tau_arg
      $ jobs_arg $ readers_arg $ shards_arg $ store_arg $ sync_arg $ checkpoint_every_arg
      $ seq_backend_arg)

let pinned_arg =
  Arg.(value & opt (some string) None
       & info [ "pinned" ] ~docv:"DEST"
           ~doc:"Pin the store's state before indexing the new files, and back that pinned pre-save view up into $(docv) (a fresh store directory recovering to exactly the pinned epoch) -- a consistent backup taken while the save keeps writing.")

let save_t =
  Cmd.v
    (Cmd.info "save" ~doc:"Index files into a durable store directory and checkpoint")
    Term.(
      const save_cmd $ store_dir_pos $ save_files_arg $ whole_arg $ variant_arg $ backend_arg
      $ sample_arg $ tau_arg $ sync_arg $ pinned_arg)

let open_t =
  Cmd.v
    (Cmd.info "open" ~doc:"Recover an index from a store directory and answer queries interactively")
    Term.(
      const open_cmd $ store_dir_pos $ variant_arg $ backend_arg $ sample_arg $ tau_arg $ jobs_arg
      $ readers_arg $ sync_arg $ checkpoint_every_arg $ retain_epochs_arg)

(* --- service plane: serve + load --- *)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on (serve) or dial (load) a Unix-domain socket at $(docv) instead of TCP.")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"TCP address to bind or dial (numeric).")

let port_arg =
  Arg.(value & opt int 7433
       & info [ "port" ] ~docv:"PORT" ~doc:"TCP port; with $(b,serve), 0 picks an ephemeral port.")

let max_batch_arg =
  Arg.(value & opt int 256
       & info [ "max-batch" ] ~docv:"N"
           ~doc:"Writes per group commit: the writer drains up to $(docv) queued mutations into one WAL append + one fsync. 1 degenerates to per-op fsync.")

let max_frame_arg =
  Arg.(value & opt int (1 lsl 20)
       & info [ "max-frame" ] ~docv:"BYTES"
           ~doc:"Per-connection request frame size bound; an overlong frame closes that connection.")

let max_conns_arg =
  Arg.(value & opt int 1024
       & info [ "max-conns" ] ~docv:"N" ~doc:"Concurrent connections before new accepts are rejected.")

let timeout_arg =
  Arg.(value & opt float 30.
       & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-connection socket read/write timeout (0 = no timeout).")

let serve_t =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a store over a socket with group-committed writes"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Recover the store in $(i,DIR) and serve it. Queries run against the \
              epoch-published read plane (add $(b,--readers) for a reader-domain pool); \
              mutations from all connections are funneled to one writer thread and \
              committed in groups of up to $(b,--max-batch): one WAL append, one fsync, \
              then every client in the batch gets its acknowledgment. SIGTERM or SIGINT \
              triggers the graceful drain: in-flight requests finish, the write queue \
              flushes, the store checkpoints, and the process exits 0.";
         ])
    Term.(
      const serve_cmd $ store_dir_pos $ socket_arg $ host_arg $ port_arg $ variant_arg
      $ backend_arg $ sample_arg $ tau_arg $ jobs_arg $ readers_arg $ shards_arg $ sync_arg
      $ checkpoint_every_arg $ max_batch_arg $ max_frame_arg $ max_conns_arg $ timeout_arg
      $ retain_epochs_arg)

(* --- follow: WAL-shipped read replica --- *)

let from_arg =
  Arg.(value & opt (some string) None
       & info [ "from" ] ~docv:"HOST:PORT" ~doc:"The leader to replicate from, over TCP.")

let from_socket_arg =
  Arg.(value & opt (some string) None
       & info [ "from-socket" ] ~docv:"PATH"
           ~doc:"The leader to replicate from, over a Unix-domain socket.")

let follow_store_arg =
  Arg.(required & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Replica store directory: bootstrapped from the leader if fresh (single stores get the newest snapshot over the wire; sharded replicas start empty or from a pinned backup copied here), then kept in sync by WAL tailing.")

let follow_port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"Also serve the replica read-only on this TCP port (0 picks an ephemeral port); mutations get a redirect error naming the leader.")

let follow_poll_arg =
  Arg.(value & opt float 0.02
       & info [ "poll" ] ~docv:"SECONDS" ~doc:"Idle delay between empty replication polls.")

let follow_t =
  Cmd.v
    (Cmd.info "follow"
       ~doc:"Tail a running dsdg serve into a local read replica"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Replicate a leader started with $(b,dsdg serve) into $(b,--store) $(i,DIR): \
              bootstrap (snapshot over the wire if the leader already compacted), then poll \
              the leader's replication streams and replay shipped WAL records through the \
              replica's own write path. The leader only ships records below its group-commit \
              fsync bound, so the replica never observes an unacknowledged write. With \
              $(b,--socket) or $(b,--port) the replica serves the full query grammar \
              read-only; writes are refused with a redirect naming the leader. A replication \
              lag line is printed every ~2s. SIGTERM/SIGINT stops tailing and closes the \
              replica cleanly -- the directory is an ordinary store, promotable with a plain \
              $(b,dsdg serve) $(i,DIR).";
         ])
    Term.(
      const follow_cmd $ from_arg $ from_socket_arg $ follow_store_arg $ socket_arg $ host_arg
      $ follow_port_arg $ variant_arg $ backend_arg $ sample_arg $ tau_arg $ seq_backend_arg
      $ retain_epochs_arg $ follow_poll_arg)

let clients_arg =
  Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client sessions.")

let load_ops_arg =
  Arg.(value & opt int 4000
       & info [ "ops" ] ~docv:"N" ~doc:"Total operations, split across the client sessions.")

let load_seed_arg =
  Arg.(value & opt int 42
       & info [ "seed" ] ~doc:"Base random seed (session i draws from seed + 31i).")

let mix_weight name default doc = Arg.(value & opt int default & info [ name ] ~docv:"W" ~doc)
let w_insert_arg = mix_weight "insert-weight" 20 "Relative weight of inserts in the op mix."
let w_delete_arg = mix_weight "delete-weight" 5 "Relative weight of deletes in the op mix."
let w_search_arg = mix_weight "search-weight" 50 "Relative weight of searches in the op mix."
let w_count_arg = mix_weight "count-weight" 15 "Relative weight of counts in the op mix."
let w_extract_arg = mix_weight "extract-weight" 10 "Relative weight of extracts in the op mix."

let load_t =
  Cmd.v
    (Cmd.info "load"
       ~doc:"Generate client load against a running dsdg serve"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Closed-loop load generator: $(b,--clients) threads, each with its own \
              connection and deterministic rng, firing a Zipf-skewed operation mix \
              ($(b,--insert-weight) etc.). Latency is recorded raw per operation, so the \
              reported p999 is exact, not a histogram-bucket bound. Prints a one-line \
              summary and appends a BENCH JSON row to $(b,DSDG_BENCH_JSON) (default \
              BENCH_RESULTS.json). Exits 1 if any operation errored or none completed.";
         ])
    Term.(
      const loadgen_cmd $ socket_arg $ host_arg $ port_arg $ clients_arg $ load_ops_arg
      $ load_seed_arg $ timeout_arg $ shards_arg $ w_insert_arg $ w_delete_arg $ w_search_arg
      $ w_count_arg $ w_extract_arg)

let demo_t = Cmd.v (Cmd.info "demo" ~doc:"Synthetic churn demo") Term.(const demo_cmd $ ops_arg)

let graph_nodes_arg =
  Arg.(value & opt int 100_000
       & info [ "nodes" ] ~docv:"N" ~doc:"Page universe of the generated crawl.")

let graph_edges_arg =
  Arg.(value & opt int 1_000_000
       & info [ "edges" ] ~docv:"M" ~doc:"Distinct directed edges to generate.")

let graph_queries_arg =
  Arg.(value & opt int 1000
       & info [ "queries" ] ~docv:"N"
           ~doc:"Neighbor-scan sources to draw (BFS runs $(docv)/10 traversals).")

let graph_rel_backend_arg =
  Arg.(value & opt string "k2"
       & info [ "rel-backend" ] ~docv:"NAME"
           ~doc:"Adjacency backend: str (wavelet-tree pair list) | k2 (quadtree over the \
                 adjacency matrix). A runtime choice, never persisted: a pair set saved under \
                 one backend reopens under the other.")

let graph_save_arg =
  Arg.(value & opt (some string) None
       & info [ "save" ] ~docv:"FILE"
           ~doc:"After the workload, save the live pair set into $(docv) (Codec relation \
                 container, backend-agnostic).")

let graph_load_arg =
  Arg.(value & opt (some file) None
       & info [ "load" ] ~docv:"FILE"
           ~doc:"Re-ingest a pair set saved with --save into the chosen backend instead of \
                 generating a crawl.")

let graph_t =
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Build a web-crawl graph in a compressed adjacency backend and run scan/BFS workloads"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Generate a web-crawl-shaped stream of distinct directed edges (Zipf-skewed \
              in-degrees over a growing frontier), insert it into the adjacency backend named \
              by $(b,--rel-backend), then measure neighbor scans (successor + predecessor \
              enumeration from out-degree-biased sources), BFS traversals, and delete/re-insert \
              churn, finishing with the structure's measured bits/edge. $(b,--save) persists \
              the bare pair set; $(b,--load) re-ingests one into either backend.";
         ])
    Term.(
      const graph_cmd $ graph_nodes_arg $ graph_edges_arg $ load_seed_arg $ graph_rel_backend_arg
      $ tau_arg $ graph_queries_arg $ graph_save_arg $ graph_load_arg)

let no_obs_arg =
  Arg.(value & flag & info [ "no-obs" ] ~doc:"Disable the observability layer (overhead demo).")

let stats_t =
  Cmd.v
    (Cmd.info "stats" ~doc:"Scripted churn workload + observability dump")
    Term.(
      const stats_cmd $ ops_arg $ variant_arg $ backend_arg $ sample_arg $ tau_arg $ no_obs_arg
      $ jobs_arg $ readers_arg $ shards_arg $ store_arg $ sync_arg $ checkpoint_every_arg
      $ seq_backend_arg)

let fuzz_seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base random seed (stream i uses seed+i).")
let fuzz_ops_arg = Arg.(value & opt int 1000 & info [ "ops" ] ~doc:"Operations per stream.")
let fuzz_streams_arg = Arg.(value & opt int 1 & info [ "streams" ] ~doc:"Number of independent streams.")
let fuzz_variant_arg =
  Arg.(value & opt string "all"
       & info [ "variant" ] ~doc:"all | amortized | loglog (alias: t3) | worst-case")
let fuzz_backend_arg = Arg.(value & opt string "all" & info [ "backend" ] ~doc:"all | fm | sa | csa")
let fuzz_sample_arg = Arg.(value & opt int 2 & info [ "sample" ] ~doc:"SA sampling rate s.")
let fuzz_tau_arg = Arg.(value & opt int 4 & info [ "tau" ] ~doc:"Lazy-deletion threshold tau.")
let fuzz_fault_arg =
  Arg.(value & opt string "none"
       & info [ "fault" ]
           ~doc:"Plant a deliberate defect: none | skip-top-clean | worker-crash | stale-epoch | torn-write (harness self-tests; worker-crash needs --jobs >= 1, stale-epoch needs --readers >= 1, torn-write needs --store DIR).")
let fuzz_profile_arg =
  Arg.(value & opt string "default" & info [ "profile" ] ~doc:"Op-mix profile: default | churny.")
let fuzz_replay_arg =
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"TRACE" ~doc:"Replay a saved trace file instead of generating streams (with --store: use its ops for the kill sweep).")
let fuzz_trace_dir_arg =
  Arg.(value & opt (some dir) None & info [ "trace-dir" ] ~doc:"Where to save failing traces (default: system temp dir).")
let fuzz_kill_stride_arg =
  Arg.(value & opt int 0
       & info [ "kill-stride" ]
           ~doc:"Kill-and-recover mode: crash at every N-th op (0 = auto, about 16 crash points across the stream).")

let fuzz_follow_arg =
  Arg.(value & flag
       & info [ "follow" ]
           ~doc:"Leader/follower differential mode (needs --store DIR as scratch): per variant x backend x shard count {1, --shards}, run the op stream through a real leader server with a WAL-shipped replica, verify convergence at quiesce points, then the failover sweep -- kill the leader, promote the follower, check every acked write survives and the promoted store keeps serving writes. --fault skip-top-clean plants a defect in the replica to prove the oracle catches divergence (exits 1).")

let fuzz_rel_arg =
  Arg.(value & flag
       & info [ "rel" ]
           ~doc:"Relation-backend differential mode: generate streams of relation operations \
                 (add/remove/related/successor/predecessor/pair-set snapshots), fan each over \
                 the adjacency backends named by --rel-backend, and cross-check every answer \
                 against the naive pair-set model after every op. Failing streams shrink to \
                 minimal replayable traces with a rel= hint. --fault rel-lost-remove plants a \
                 defect to prove the oracle has teeth.")

let fuzz_rel_backend_arg =
  Arg.(value & opt string "both"
       & info [ "rel-backend" ] ~docv:"SPEC"
           ~doc:"Adjacency backend(s) under test with --rel: str | k2 | both. Also the value \
                 recorded in (and enforced from) the rel= hint of saved relation traces.")

let fuzz_t =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Differential checking with shrinking and invariant oracles")
    Term.(
      const fuzz_cmd $ fuzz_seed_arg $ fuzz_ops_arg $ fuzz_streams_arg $ fuzz_variant_arg
      $ fuzz_backend_arg $ fuzz_sample_arg $ fuzz_tau_arg $ fuzz_fault_arg $ fuzz_profile_arg
      $ fuzz_replay_arg $ fuzz_trace_dir_arg $ jobs_arg $ readers_arg $ shards_arg $ store_arg
      $ sync_arg $ checkpoint_every_arg $ fuzz_kill_stride_arg $ seq_backend_arg
      $ fuzz_follow_arg $ fuzz_rel_arg $ fuzz_rel_backend_arg)

let () =
  let doc = "dynamic compressed document collection index (Munro-Nekrich-Vitter, PODS 2015)" in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "$(tname) uses a fixed exit-code scheme across every subcommand:";
      `I ("0", "success.");
      `I
        ( "1",
          "a checker found a real divergence (fuzz, kill-and-recover), a server could not \
           bind, or a load run finished with errors or zero completed operations." );
      `I ("2", "data error: corrupt store files or an unparseable trace.");
      `I ("124", "command-line usage error (bad flag value or impossible combination).");
      `I ("125", "unexpected internal error.");
    ]
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "dsdg" ~doc ~man)
          [ index_t; save_t; open_t; serve_t; follow_t; load_t; demo_t; graph_t; stats_t; fuzz_t ]))
