(* dsdg: command-line front end for the dynamic compressed document index.

     dsdg index FILE...           index files (one document per line of each
                                  file, or whole files with --whole), then
                                  answer queries from stdin
     dsdg demo                    run a synthetic churn demo with stats
     dsdg stats                   run a scripted churn workload and dump the
                                  observability layer (counters, latency
                                  histograms, structural events, space vs
                                  the entropy budget)
     dsdg fuzz                    differential checking: drive random op
                                  streams through variant x backend pairs
                                  against a naive model with paper-invariant
                                  oracles; failures shrink to a minimal
                                  trace replayable with --replay

   Query language on stdin (after `dsdg index`):
     ?PATTERN      report occurrences
     #PATTERN      count occurrences
     +TEXT         insert TEXT as a new document
     -ID           delete document ID
     =ID OFF LEN   extract a substring
     .             print stats and exit *)

open Dsdg_core
open Cmdliner

let variant_of_string = function
  | "amortized" -> Dynamic_index.Amortized
  | "loglog" -> Dynamic_index.Amortized_loglog
  | "worst-case" -> Dynamic_index.Worst_case
  | s -> invalid_arg ("unknown variant: " ^ s)

let backend_of_string = function
  | "fm" -> Dynamic_index.Fm
  | "sa" -> Dynamic_index.Plain_sa
  | "csa" -> Dynamic_index.Csa
  | s -> invalid_arg ("unknown backend: " ^ s)

let print_stats idx =
  Printf.printf "documents : %d\n" (Dynamic_index.doc_count idx);
  Printf.printf "symbols   : %d\n" (Dynamic_index.total_symbols idx);
  Printf.printf "space     : %d bits (%.2f bits/symbol)\n" (Dynamic_index.space_bits idx)
    (if Dynamic_index.total_symbols idx = 0 then 0.
     else float_of_int (Dynamic_index.space_bits idx) /. float_of_int (Dynamic_index.total_symbols idx));
  Printf.printf "engine    : %s\n" (Dynamic_index.describe idx)

let repl idx =
  (* with a reader pool the interactive queries exercise the read plane:
     served from a reader domain against the latest published epoch *)
  let pooled = Dynamic_index.readers idx > 0 in
  let do_search arg =
    if pooled then Dynamic_index.query idx (fun v -> Dynamic_index.view_search v arg)
    else Dynamic_index.search idx arg
  in
  let do_count arg =
    if pooled then Dynamic_index.query idx (fun v -> Dynamic_index.view_count v arg)
    else Dynamic_index.count idx arg
  in
  (try
     while true do
       let line = input_line stdin in
       if String.length line > 0 then begin
         let arg = String.sub line 1 (String.length line - 1) in
         match line.[0] with
         | ('?' | '#') when arg = "" ->
           (* the index uniformly rejects the empty pattern; say so
              instead of dying on Invalid_argument *)
           Printf.printf "empty pattern (matches everywhere); give at least one symbol\n%!"
         | '?' ->
           let hits = do_search arg in
           List.iter (fun (d, o) -> Printf.printf "doc %d off %d\n" d o) hits;
           Printf.printf "%d occurrence(s)\n%!" (List.length hits)
         | '#' -> Printf.printf "%d\n%!" (do_count arg)
         | '+' -> Printf.printf "doc %d\n%!" (Dynamic_index.insert idx arg)
         | '-' ->
           let ok = Dynamic_index.delete idx (int_of_string (String.trim arg)) in
           Printf.printf "%s\n%!" (if ok then "deleted" else "no such document")
         | '=' -> (
           match String.split_on_char ' ' (String.trim arg) with
           | [ id; off; len ] -> (
             match
               Dynamic_index.extract idx ~doc:(int_of_string id) ~off:(int_of_string off)
                 ~len:(int_of_string len)
             with
             | Some s -> Printf.printf "%S\n%!" s
             | None -> Printf.printf "out of range or deleted\n%!")
           | _ -> Printf.printf "usage: =ID OFF LEN\n%!")
         | '.' -> raise Exit
         | _ -> Printf.printf "commands: ?PAT #PAT +TEXT -ID =ID OFF LEN .\n%!"
       end
     done
   with End_of_file | Exit -> ());
  print_stats idx

let index_cmd files whole variant backend sample tau jobs readers =
  let idx =
    Dynamic_index.create ~variant:(variant_of_string variant)
      ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers ()
  in
  List.iter
    (fun file ->
      let ic = open_in file in
      if whole then begin
        let n = in_channel_length ic in
        ignore (Dynamic_index.insert idx (really_input_string ic n))
      end
      else begin
        try
          while true do
            let line = input_line ic in
            if String.length line > 0 then ignore (Dynamic_index.insert idx line)
          done
        with End_of_file -> ()
      end;
      close_in ic)
    files;
  Printf.printf "indexed %d document(s) from %d file(s)\n%!" (Dynamic_index.doc_count idx)
    (List.length files);
  Fun.protect ~finally:(fun () -> Dynamic_index.close idx) (fun () -> repl idx)

let demo_cmd ops =
  let open Dsdg_workload in
  let st = Text_gen.rng 7 in
  let idx = Dynamic_index.create () in
  let live = ref [] in
  for _ = 1 to ops do
    if Random.State.float st 1.0 < 0.7 || !live = [] then
      live := Dynamic_index.insert idx (Text_gen.english_like st ~len:(30 + Random.State.int st 100)) :: !live
    else begin
      match !live with
      | id :: rest ->
        ignore (Dynamic_index.delete idx id);
        live := rest
      | [] -> ()
    end
  done;
  List.iter
    (fun w -> Printf.printf "count %-8S = %d\n" w (Dynamic_index.count idx w))
    [ "data"; "index"; "query" ];
  print_stats idx

(* Scripted churn workload + full observability dump: the living
   counterpart of DESIGN.md's "Observability" section. *)
let stats_cmd ops variant backend sample tau no_obs jobs readers =
  let open Dsdg_workload in
  let open Dsdg_obs in
  if no_obs then Obs.set_enabled false;
  let idx =
    Dynamic_index.create ~variant:(variant_of_string variant)
      ~backend:(backend_of_string backend) ~sample ~tau ~jobs ~readers ()
  in
  let st = Text_gen.rng 42 in
  let live = ref [] in
  let searches = ref 0 and hits = ref 0 in
  for i = 1 to ops do
    let r = Random.State.float st 1.0 in
    if r < 0.55 || !live = [] then
      live := Dynamic_index.insert idx (Text_gen.english_like st ~len:(30 + Random.State.int st 120)) :: !live
    else if r < 0.8 then begin
      (* delete a random live doc; occasionally retry a dead id to
         exercise the failed-delete path *)
      match !live with
      | id :: rest ->
        ignore (Dynamic_index.delete idx id);
        if i mod 17 = 0 then ignore (Dynamic_index.delete idx id);
        live := rest
      | [] -> ()
    end
    else begin
      incr searches;
      let p = if i mod 2 = 0 then "data" else "query" in
      let c =
        if readers > 0 then Dynamic_index.query idx (fun v -> Dynamic_index.view_count v p)
        else Dynamic_index.count idx p
      in
      hits := !hits + c
    end
  done;
  Printf.printf "workload  : %d ops (%d searches, %d pattern hits)
" ops !searches !hits;
  print_stats idx;
  let syms = Dynamic_index.total_symbols idx in
  if syms > 0 then begin
    (* Entropy budget: reconstruct the live text through the index itself
       and compare measured bits/symbol with H0 and H2. *)
    let buf = Buffer.create syms in
    List.iter
      (fun id ->
        (* documents have unknown length: binary-search down from a
           generous cap until extract accepts the range *)
        let rec grab len =
          if len >= 1 then
            match Dynamic_index.extract idx ~doc:id ~off:0 ~len with
            | Some s -> Buffer.add_string buf s
            | None -> grab (len / 2)
        in
        grab 4096)
      !live;
    let text = Buffer.contents buf in
    if String.length text > 0 then begin
      let open Dsdg_entropy in
      Printf.printf "entropy   : H0=%.3f H2=%.3f bits/symbol (paper budget nHk + o(n))
"
        (Entropy.h0 text) (Entropy.hk ~k:2 text)
    end
  end;
  print_newline ();
  (* join worker domains before rendering so the executor counters
     (exec_submitted/completed/..., queue depth, wall/handoff latency)
     are final; they live in the same scope as the transformation's *)
  Dynamic_index.close idx;
  if no_obs then print_endline "observability disabled (--no-obs): no counters recorded"
  else begin
    print_string (Obs.render (Dynamic_index.obs_scope idx));
    List.iter (fun s -> print_string (Obs.render s)) (Obs.registered ())
  end

(* Differential fuzzing: the CLI face of Dsdg_check (DESIGN.md section 6).
   A failing stream is shrunk to a minimal trace, saved, and the replay
   one-liner printed -- a CI failure reproduces with a single command. *)
let fuzz_cmd seed ops streams variant backend sample tau fault profile replay trace_dir jobs
    readers =
  let open Dsdg_check in
  let targets = Runner.select_targets ~variant ~backend () in
  let config =
    {
      Runner.default_config with
      Runner.sample;
      tau;
      jobs;
      readers;
      fault =
        (match fault with
        | "none" -> None
        | "skip-top-clean" -> Some `Skip_top_clean
        | "worker-crash" -> Some `Worker_crash
        | "stale-epoch" -> Some `Stale_epoch
        | s -> invalid_arg ("unknown fault: " ^ s));
    }
  in
  if config.Runner.fault = Some `Worker_crash && jobs = 0 then
    invalid_arg "--fault worker-crash requires --jobs >= 1 (it sabotages the pooled executor)";
  if config.Runner.fault = Some `Stale_epoch && readers = 0 then
    invalid_arg
      "--fault stale-epoch requires --readers >= 1 (it breaks only the read plane, which direct queries never touch)";
  let profile =
    match profile with
    | "default" -> Opgen.default
    | "churny" -> Opgen.churny
    | s -> invalid_arg ("unknown profile: " ^ s)
  in
  let tnames = String.concat ", " (List.map (fun t -> t.Runner.tg_name) targets) in
  let fail_with ~seed_used failure shrunk =
    print_string (Runner.report ?seed:seed_used ~failure ~shrunk ());
    let dir = match trace_dir with Some d -> d | None -> Filename.get_temp_dir_name () in
    let path =
      Filename.concat dir
        (match seed_used with
        | Some s -> Printf.sprintf "dsdg-fuzz-seed%d.trace" s
        | None -> "dsdg-fuzz-replay.trace")
    in
    Trace.save path shrunk;
    Printf.printf "minimal trace saved to %s\nreplay: dsdg fuzz --replay %s --variant %s --backend %s%s%s%s\n"
      path path variant backend
      (if config.Runner.fault <> None then " --fault " ^ fault else "")
      (if jobs > 0 then Printf.sprintf " --jobs %d" jobs else "")
      (if readers > 0 then Printf.sprintf " --readers %d" readers else "");
    exit 1
  in
  match replay with
  | Some file ->
    let trace = Trace.load file in
    Printf.printf "replaying %d ops from %s against %s\n%!" (List.length trace) file tnames;
    (match Runner.run_trace ~config ~targets trace with
    | Ok () -> Printf.printf "replay OK: all targets agree with the model, all invariants hold\n"
    | Error f ->
      let prefix = List.filteri (fun i _ -> i < f.Runner.f_step) trace in
      let shrunk = Runner.shrink ~config ~targets prefix in
      fail_with ~seed_used:None f shrunk)
  | None ->
    Printf.printf "fuzzing %d stream(s) x %d ops against %s\n%!" streams ops tnames;
    for s = 0 to streams - 1 do
      let stream_seed = seed + s in
      match Runner.run_stream ~config ~profile ~targets ~seed:stream_seed ~ops () with
      | Runner.Pass ->
        if streams > 1 then Printf.printf "stream seed=%d: ok\n%!" stream_seed
      | Runner.Fail { failure; shrunk; _ } -> fail_with ~seed_used:(Some stream_seed) failure shrunk
    done;
    Printf.printf "fuzz OK: %d stream(s) x %d ops, %d target(s), model + invariants clean\n" streams
      ops (List.length targets)

let files_arg = Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")
let whole_arg = Arg.(value & flag & info [ "whole" ] ~doc:"Index whole files instead of lines.")
let variant_arg =
  Arg.(value & opt string "worst-case" & info [ "variant" ] ~doc:"amortized | loglog | worst-case")
let backend_arg = Arg.(value & opt string "fm" & info [ "backend" ] ~doc:"fm | sa | csa")
let sample_arg = Arg.(value & opt int 8 & info [ "sample" ] ~doc:"SA sampling rate s.")
let tau_arg = Arg.(value & opt int 8 & info [ "tau" ] ~doc:"Lazy-deletion threshold tau.")
let ops_arg = Arg.(value & opt int 500 & info [ "ops" ] ~doc:"Demo operations.")
let jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs" ]
           ~doc:"Background-rebuild worker domains (0 = deterministic synchronous mode).")

let readers_arg =
  Arg.(value & opt int 0
       & info [ "readers" ]
           ~doc:"Reader-pool domains serving queries from the latest published snapshot (0 = queries run on the caller's domain).")

let index_t =
  Cmd.v (Cmd.info "index" ~doc:"Index files and answer queries interactively")
    Term.(
      const index_cmd $ files_arg $ whole_arg $ variant_arg $ backend_arg $ sample_arg $ tau_arg
      $ jobs_arg $ readers_arg)

let demo_t = Cmd.v (Cmd.info "demo" ~doc:"Synthetic churn demo") Term.(const demo_cmd $ ops_arg)

let no_obs_arg =
  Arg.(value & flag & info [ "no-obs" ] ~doc:"Disable the observability layer (overhead demo).")

let stats_t =
  Cmd.v
    (Cmd.info "stats" ~doc:"Scripted churn workload + observability dump")
    Term.(
      const stats_cmd $ ops_arg $ variant_arg $ backend_arg $ sample_arg $ tau_arg $ no_obs_arg
      $ jobs_arg $ readers_arg)

let fuzz_seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base random seed (stream i uses seed+i).")
let fuzz_ops_arg = Arg.(value & opt int 1000 & info [ "ops" ] ~doc:"Operations per stream.")
let fuzz_streams_arg = Arg.(value & opt int 1 & info [ "streams" ] ~doc:"Number of independent streams.")
let fuzz_variant_arg =
  Arg.(value & opt string "all" & info [ "variant" ] ~doc:"all | amortized | loglog | worst-case")
let fuzz_backend_arg = Arg.(value & opt string "all" & info [ "backend" ] ~doc:"all | fm | sa | csa")
let fuzz_sample_arg = Arg.(value & opt int 2 & info [ "sample" ] ~doc:"SA sampling rate s.")
let fuzz_tau_arg = Arg.(value & opt int 4 & info [ "tau" ] ~doc:"Lazy-deletion threshold tau.")
let fuzz_fault_arg =
  Arg.(value & opt string "none"
       & info [ "fault" ]
           ~doc:"Plant a deliberate defect: none | skip-top-clean | worker-crash | stale-epoch (harness self-tests; worker-crash needs --jobs >= 1, stale-epoch needs --readers >= 1).")
let fuzz_profile_arg =
  Arg.(value & opt string "default" & info [ "profile" ] ~doc:"Op-mix profile: default | churny.")
let fuzz_replay_arg =
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"TRACE" ~doc:"Replay a saved trace file instead of generating streams.")
let fuzz_trace_dir_arg =
  Arg.(value & opt (some dir) None & info [ "trace-dir" ] ~doc:"Where to save failing traces (default: system temp dir).")

let fuzz_t =
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Differential checking with shrinking and invariant oracles")
    Term.(
      const fuzz_cmd $ fuzz_seed_arg $ fuzz_ops_arg $ fuzz_streams_arg $ fuzz_variant_arg
      $ fuzz_backend_arg $ fuzz_sample_arg $ fuzz_tau_arg $ fuzz_fault_arg $ fuzz_profile_arg
      $ fuzz_replay_arg $ fuzz_trace_dir_arg $ jobs_arg $ readers_arg)

let () =
  let doc = "dynamic compressed document collection index (Munro-Nekrich-Vitter, PODS 2015)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "dsdg" ~doc) [ index_t; demo_t; stats_t; fuzz_t ]))
